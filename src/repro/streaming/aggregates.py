"""Reference incremental operators.

These exercise the :class:`~repro.streaming.operator.IncrementalOperator`
contract and give downstream users the usual aggregation vocabulary.  The
``MeanOperator`` is the paper's worked example (Section 2)::

    InitialState: () => S = {Count: 0, Sum: 0}
    Accumulate:   (S, E) => {S.Count + 1, S.Sum + E.Value}
    Deaccumulate: (S, E) => {S.Count - 1, S.Sum - E.Value}
    ComputeResult: S => S.Sum / S.Count

Min/Max cannot be deaccumulated from constant state (removing the current
minimum requires knowing the runner-up), so they keep a frequency map — the
same trick the Exact quantile baseline uses.

All operators override the batched surface.  Count and Min/Max vectorise
outright (length arithmetic, frequency-map bulk updates); Sum/Mean/Variance
keep sequential scalar additions inside the batch loop so their folds stay
bit-identical to the per-event path (floating-point addition is not
associative) while still skipping Event construction and dispatch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro import serde
from repro.datastructures import (
    FrequencyMap,
    frequency_map_from_state,
    make_frequency_map,
)
from repro.streaming.event import Event
from repro.streaming.operator import IncrementalOperator
from repro.streaming.sources import Chunk

#: State-format version written by the aggregate operators' state_to_dict.
AGGREGATE_STATE_VERSION = 1


@dataclass(slots=True)
class _CountState:
    count: int = 0


class CountOperator(IncrementalOperator[_CountState, int]):
    """Number of events in the window."""

    def initial_state(self) -> _CountState:
        return _CountState()

    def accumulate(self, state: _CountState, event: Event) -> _CountState:
        state.count += 1
        return state

    def deaccumulate(self, state: _CountState, event: Event) -> _CountState:
        state.count -= 1
        return state

    def accumulate_batch(self, state: _CountState, chunk: Chunk) -> _CountState:
        state.count += len(chunk)
        return state

    def deaccumulate_batch(self, state: _CountState, chunk: Chunk) -> _CountState:
        state.count -= len(chunk)
        return state

    def merge_states(self, state: _CountState, other: _CountState) -> _CountState:
        state.count += other.count
        return state

    def state_to_dict(self, state: _CountState) -> dict:
        data = serde.header("count_state", AGGREGATE_STATE_VERSION)
        data["count"] = int(state.count)
        return data

    def state_from_dict(self, data: dict) -> _CountState:
        serde.check_state(data, "count_state", AGGREGATE_STATE_VERSION, "count state")
        serde.require_fields(data, ("count",), "count state")
        return _CountState(count=int(data["count"]))

    def compute_result(self, state: _CountState) -> int:
        return state.count


@dataclass(slots=True)
class _SumState:
    total: float = 0.0


class SumOperator(IncrementalOperator[_SumState, float]):
    """Sum of event values in the window."""

    def initial_state(self) -> _SumState:
        return _SumState()

    def accumulate(self, state: _SumState, event: Event) -> _SumState:
        state.total += event.value
        return state

    def deaccumulate(self, state: _SumState, event: Event) -> _SumState:
        state.total -= event.value
        return state

    def accumulate_batch(self, state: _SumState, chunk: Chunk) -> _SumState:
        total = state.total
        for value in chunk.values.tolist():
            total += value
        state.total = total
        return state

    def deaccumulate_batch(self, state: _SumState, chunk: Chunk) -> _SumState:
        total = state.total
        for value in chunk.values.tolist():
            total -= value
        state.total = total
        return state

    def merge_states(self, state: _SumState, other: _SumState) -> _SumState:
        state.total += other.total
        return state

    def state_to_dict(self, state: _SumState) -> dict:
        data = serde.header("sum_state", AGGREGATE_STATE_VERSION)
        data["total"] = float(state.total)
        return data

    def state_from_dict(self, data: dict) -> _SumState:
        serde.check_state(data, "sum_state", AGGREGATE_STATE_VERSION, "sum state")
        serde.require_fields(data, ("total",), "sum state")
        return _SumState(total=float(data["total"]))

    def compute_result(self, state: _SumState) -> float:
        return state.total


@dataclass(slots=True)
class _MeanState:
    count: int = 0
    total: float = 0.0


class MeanOperator(IncrementalOperator[_MeanState, float]):
    """Arithmetic mean — the incremental-evaluation example of Section 2."""

    def initial_state(self) -> _MeanState:
        return _MeanState()

    def accumulate(self, state: _MeanState, event: Event) -> _MeanState:
        state.count += 1
        state.total += event.value
        return state

    def deaccumulate(self, state: _MeanState, event: Event) -> _MeanState:
        state.count -= 1
        state.total -= event.value
        return state

    def accumulate_batch(self, state: _MeanState, chunk: Chunk) -> _MeanState:
        state.count += len(chunk)
        total = state.total
        for value in chunk.values.tolist():
            total += value
        state.total = total
        return state

    def deaccumulate_batch(self, state: _MeanState, chunk: Chunk) -> _MeanState:
        state.count -= len(chunk)
        total = state.total
        for value in chunk.values.tolist():
            total -= value
        state.total = total
        return state

    def merge_states(self, state: _MeanState, other: _MeanState) -> _MeanState:
        state.count += other.count
        state.total += other.total
        return state

    def state_to_dict(self, state: _MeanState) -> dict:
        data = serde.header("mean_state", AGGREGATE_STATE_VERSION)
        data["count"] = int(state.count)
        data["total"] = float(state.total)
        return data

    def state_from_dict(self, data: dict) -> _MeanState:
        serde.check_state(data, "mean_state", AGGREGATE_STATE_VERSION, "mean state")
        serde.require_fields(data, ("count", "total"), "mean state")
        return _MeanState(count=int(data["count"]), total=float(data["total"]))

    def compute_result(self, state: _MeanState) -> float:
        if state.count == 0:
            return math.nan
        return state.total / state.count


@dataclass(slots=True)
class _VarianceState:
    count: int = 0
    total: float = 0.0
    total_sq: float = 0.0


class VarianceOperator(IncrementalOperator[_VarianceState, float]):
    """Population variance via deaccumulatable power sums."""

    def initial_state(self) -> _VarianceState:
        return _VarianceState()

    def accumulate(self, state: _VarianceState, event: Event) -> _VarianceState:
        state.count += 1
        state.total += event.value
        state.total_sq += event.value * event.value
        return state

    def deaccumulate(self, state: _VarianceState, event: Event) -> _VarianceState:
        state.count -= 1
        state.total -= event.value
        state.total_sq -= event.value * event.value
        return state

    def accumulate_batch(self, state: _VarianceState, chunk: Chunk) -> _VarianceState:
        state.count += len(chunk)
        total = state.total
        total_sq = state.total_sq
        for value in chunk.values.tolist():
            total += value
            total_sq += value * value
        state.total = total
        state.total_sq = total_sq
        return state

    def deaccumulate_batch(self, state: _VarianceState, chunk: Chunk) -> _VarianceState:
        state.count -= len(chunk)
        total = state.total
        total_sq = state.total_sq
        for value in chunk.values.tolist():
            total -= value
            total_sq -= value * value
        state.total = total
        state.total_sq = total_sq
        return state

    def merge_states(
        self, state: _VarianceState, other: _VarianceState
    ) -> _VarianceState:
        state.count += other.count
        state.total += other.total
        state.total_sq += other.total_sq
        return state

    def state_to_dict(self, state: _VarianceState) -> dict:
        data = serde.header("variance_state", AGGREGATE_STATE_VERSION)
        data["count"] = int(state.count)
        data["total"] = float(state.total)
        data["total_sq"] = float(state.total_sq)
        return data

    def state_from_dict(self, data: dict) -> _VarianceState:
        serde.check_state(
            data, "variance_state", AGGREGATE_STATE_VERSION, "variance state"
        )
        serde.require_fields(data, ("count", "total", "total_sq"), "variance state")
        return _VarianceState(
            count=int(data["count"]),
            total=float(data["total"]),
            total_sq=float(data["total_sq"]),
        )

    def compute_result(self, state: _VarianceState) -> float:
        if state.count == 0:
            return math.nan
        mean = state.total / state.count
        # Guard tiny negative values from floating-point cancellation.
        return max(0.0, state.total_sq / state.count - mean * mean)


@dataclass(slots=True)
class _ExtremumState:
    values: FrequencyMap = field(default_factory=lambda: make_frequency_map("dict"))


class _ExtremumSerde:
    """Shared state serialization for the frequency-map extremes."""

    def state_to_dict(self, state: _ExtremumState) -> dict:
        data = serde.header("extremum_state", AGGREGATE_STATE_VERSION)
        data["values"] = state.values.to_state()
        return data

    def state_from_dict(self, data: dict) -> _ExtremumState:
        serde.check_state(
            data, "extremum_state", AGGREGATE_STATE_VERSION, "extremum state"
        )
        serde.require_fields(data, ("values",), "extremum state")
        return _ExtremumState(values=frequency_map_from_state(data["values"]))


class MinOperator(_ExtremumSerde, IncrementalOperator[_ExtremumState, float]):
    """Minimum over the window, deaccumulatable via a frequency map."""

    def initial_state(self) -> _ExtremumState:
        return _ExtremumState()

    def accumulate(self, state: _ExtremumState, event: Event) -> _ExtremumState:
        state.values.add(event.value)
        return state

    def deaccumulate(self, state: _ExtremumState, event: Event) -> _ExtremumState:
        state.values.discard(event.value)
        return state

    def accumulate_batch(self, state: _ExtremumState, chunk: Chunk) -> _ExtremumState:
        state.values.extend_array(chunk.values)
        return state

    def deaccumulate_batch(self, state: _ExtremumState, chunk: Chunk) -> _ExtremumState:
        state.values.discard_array(chunk.values)
        return state

    def merge_states(
        self, state: _ExtremumState, other: _ExtremumState
    ) -> _ExtremumState:
        state.values.merge_from(other.values)
        return state

    def compute_result(self, state: _ExtremumState) -> float:
        if state.values.total == 0:
            return math.nan
        return next(iter(state.values.items_sorted()))[0]


class MaxOperator(_ExtremumSerde, IncrementalOperator[_ExtremumState, float]):
    """Maximum over the window, deaccumulatable via a frequency map."""

    def initial_state(self) -> _ExtremumState:
        return _ExtremumState()

    def accumulate(self, state: _ExtremumState, event: Event) -> _ExtremumState:
        state.values.add(event.value)
        return state

    def deaccumulate(self, state: _ExtremumState, event: Event) -> _ExtremumState:
        state.values.discard(event.value)
        return state

    def accumulate_batch(self, state: _ExtremumState, chunk: Chunk) -> _ExtremumState:
        state.values.extend_array(chunk.values)
        return state

    def deaccumulate_batch(self, state: _ExtremumState, chunk: Chunk) -> _ExtremumState:
        state.values.discard_array(chunk.values)
        return state

    def merge_states(
        self, state: _ExtremumState, other: _ExtremumState
    ) -> _ExtremumState:
        state.values.merge_from(other.values)
        return state

    def compute_result(self, state: _ExtremumState) -> float:
        if state.values.total == 0:
            return math.nan
        return next(iter(state.values.items_descending()))[0]
