"""The labeled wire path: per-series routing, group-by op, series stats.

Extends the serving acceptance battery to labeled metrics: blocks carry
``labels`` and flow into per-series sequence spaces, the ``group_by`` op
answers exactly what a local :func:`group_by_live` would, the
``LoadGenerator``'s labeled fan-out replays offline bit-identically, and
the ``stats`` op reports the series index's cardinality counters.
"""

import numpy as np
import pytest

from repro.series.labels import deterministic_labelsets, series_slice
from repro.service import (
    LoadGenerator,
    Monitor,
    ServerError,
    TelemetryClient,
    TelemetryServer,
)

WINDOW = {"size": 2000, "period": 100}

SPECS = [
    {
        "name": "rtt",
        "quantiles": [0.5, 0.99],
        "window": WINDOW,
        "policy": "qlove",
    },
    {
        "name": "lat",
        "quantiles": [0.5, 0.99],
        "window": WINDOW,
        "policy": "qlove",
        "labels": ["region", "host"],
        "series": {"shards": 3, "max_active": 4},
    },
]

SCHEMA = ["region", "host"]
N_SERIES = 6
FANOUT = 3
LABELSETS = deterministic_labelsets(SCHEMA, N_SERIES, FANOUT)


def make_monitor() -> Monitor:
    monitor = Monitor()
    for spec in SPECS:
        monitor.register(spec)
    return monitor


def offline_labeled_reference(values: np.ndarray) -> Monitor:
    """Offline twin of a labeled uniform fan-out ingest."""
    monitor = make_monitor()
    monitor.observe_batch("rtt", values)
    for j, labels in enumerate(LABELSETS):
        monitor.observe_batch(
            "lat", series_slice(values, 0, N_SERIES, j), labels=labels
        )
    return monitor


@pytest.fixture()
def server():
    with TelemetryServer(make_monitor(), flush_timeout=2.0) as srv:
        yield srv


@pytest.fixture()
def client(server):
    host, port = server.address
    with TelemetryClient(host, port) as cli:
        yield cli


class TestLabeledIngest:
    def test_ping_reports_label_schemas(self, client):
        info = client.ping_info()
        assert info["metrics"] == ["rtt", "lat"]
        assert info["labels"] == {"lat": ["host", "region"]}

    def test_labeled_metric_requires_labels_on_the_wire(self, client):
        with pytest.raises(ServerError, match="labels"):
            client.observe("lat", [1.0, 2.0])

    def test_unlabeled_metric_rejects_labels(self, client):
        with pytest.raises(ServerError, match="not labeled"):
            client.observe("rtt", [1.0], labels=LABELSETS[0])

    def test_invalid_labelset_rejected_before_enqueue(self, client):
        with pytest.raises(ServerError, match="missing label"):
            client.observe("lat", [1.0], labels={"region": "eu"})
        with pytest.raises(ServerError, match="name: value"):
            client.request(
                {"op": "observe", "metric": "lat", "values": [1.0],
                 "labels": ["region"]}
            )

    def test_labeled_blocks_apply_and_snapshot_nests(self, client):
        values = np.linspace(1.0, 200.0, 200)
        for j, labels in enumerate(LABELSETS):
            client.observe(
                "lat",
                series_slice(values, 0, N_SERIES, j).tolist(),
                labels=labels,
            )
        client.flush()
        snapshot = client.snapshot()
        assert snapshot["rtt"] is None
        assert len(snapshot["lat"]) == N_SERIES
        keys = list(snapshot["lat"])
        assert keys == sorted(keys)

    def test_per_series_seq_spaces_are_independent(self, server, client):
        # seq 0 on two different series: both apply (different spaces);
        # a duplicate seq 0 on the same series is replay-dropped.
        client.observe("lat", [1.0, 2.0], seq=0, labels=LABELSETS[0])
        client.observe("lat", [3.0], seq=0, labels=LABELSETS[1])
        client.observe("lat", [9.0, 9.0], seq=0, labels=LABELSETS[0])
        client.flush()
        seen = client.seen()
        assert seen["lat"] == 3

    def test_results_with_labels_round_trip(self, client):
        values = np.linspace(1.0, 100.0, 2000)
        client.observe("lat", values.tolist(), labels=LABELSETS[0])
        client.flush()
        served = client.results("lat", labels=LABELSETS[0])
        offline = Monitor()
        offline.register(SPECS[1])
        offline.observe_batch("lat", values, labels=LABELSETS[0])
        assert served == offline.results("lat", labels=LABELSETS[0])

    def test_results_error_paths_are_actionable(self, client):
        with pytest.raises(ServerError, match="pass labels="):
            client.results("lat")
        with pytest.raises(ServerError, match="no series"):
            client.results("lat", labels=LABELSETS[0])


class TestGroupByOp:
    def seed_series(self, client, events=1200):
        values = np.asarray(
            np.random.default_rng(3).lognormal(3.0, 1.2, events)
        )
        for j, labels in enumerate(LABELSETS):
            client.observe(
                "lat",
                series_slice(values, 0, N_SERIES, j).tolist(),
                labels=labels,
            )
        return values

    def test_group_by_matches_local_engine(self, client):
        values = self.seed_series(client)
        # "host" is the first schema label in sorted order, so it is the
        # dimension deterministic_labelsets fans out into FANOUT values.
        served = client.group_by("lat", "host")
        offline = offline_labeled_reference(values)
        local = offline.group_by("lat", "host")
        assert served == local
        assert len(served["groups"]) == FANOUT

    def test_group_by_quantile_selection(self, client):
        self.seed_series(client)
        served = client.group_by("lat", ["region"], quantiles=[0.99])
        assert all(
            list(group["quantiles"]) == ["0.99"]
            for group in served["groups"]
        )

    def test_group_by_validation_over_the_wire(self, client):
        self.seed_series(client, events=1200)
        with pytest.raises(ServerError, match="unknown label"):
            client.group_by("lat", "zone")
        with pytest.raises(ServerError, match="non-empty"):
            client.group_by("lat", [])
        with pytest.raises(ServerError, match="not labeled"):
            client.group_by("rtt", "region")
        with pytest.raises(ServerError, match="unknown metric"):
            client.group_by("nope", "region")
        with pytest.raises(ServerError, match="not tracked"):
            client.group_by("lat", "region", quantiles=[0.42])

    def test_group_by_drains_pending_blocks_first(self, server, client):
        values = self.seed_series(client, events=600)
        served = client.group_by("lat", "region")
        total = sum(group["count"] for group in served["groups"])
        assert total == 600


class TestSeriesStats:
    def test_stats_report_series_counters_and_memory(self, client):
        values = np.linspace(1.0, 50.0, 300)
        for j, labels in enumerate(LABELSETS):
            client.observe(
                "lat",
                series_slice(values, 0, N_SERIES, j).tolist(),
                labels=labels,
            )
        stats = client.stats()
        report = stats["metrics"]["lat"]
        series = report["series"]
        # max_active=4 over 6 observed series: 4 live, 2 sealed.
        assert series["active"] == 4
        assert series["evicted"] == 2
        assert series["created"] == N_SERIES
        assert series["evictions"] >= 2
        assert series["resurrections"] == 0
        assert series["memory_estimate_bytes"] > 0
        assert report["seen"] == 300
        assert "series" not in stats["metrics"]["rtt"]

    def test_resurrections_are_counted(self, client):
        # Touch 6 series twice in series-order so every second-round
        # touch resurrects a sealed series (max_active=4).
        for _round in range(2):
            for labels in LABELSETS:
                client.observe("lat", [1.0], labels=labels)
        stats = client.stats()
        assert stats["metrics"]["lat"]["series"]["resurrections"] > 0

    def test_labeled_next_seq_is_the_family_frontier(self, client):
        client.observe("lat", [1.0, 2.0], seq=0, labels=LABELSETS[0])
        client.observe("lat", [3.0], seq=1, labels=LABELSETS[0])
        client.observe("lat", [4.0], seq=0, labels=LABELSETS[1])
        stats = client.stats()
        assert stats["metrics"]["lat"]["next_seq"] == 2
        assert stats["metrics"]["rtt"]["next_seq"] == 0


class TestLabeledLoadGenerator:
    def test_labelsets_are_a_pure_function(self):
        generator = LoadGenerator(
            "127.0.0.1", 1, events=100, series=6, label_fanout=3
        )
        assert generator.labelsets_for(SCHEMA) == LABELSETS

    @pytest.mark.parametrize("connections", [1, 3])
    def test_served_labeled_run_matches_offline_bit_identically(
        self, connections
    ):
        events, block = 3_000, 256
        with TelemetryServer(make_monitor()) as server:
            host, port = server.address
            generator = LoadGenerator(
                host, port, dataset="netmon", events=events, seed=7,
                connections=connections, block_size=block,
                series=N_SERIES, label_fanout=FANOUT,
            )
            summary = generator.run()
            assert summary["drained"] is True
            with TelemetryClient(host, port) as client:
                served_snapshot = client.snapshot()
                served_group = client.group_by("lat", "region")

        offline = offline_labeled_reference(generator.event_sequence())
        assert served_snapshot == offline.snapshot()
        assert served_group == offline.group_by("lat", "region")

    def test_interrupted_labeled_run_resumes_bit_identically(self):
        events, block = 3_000, 256
        half = (events // 2 // block) * block
        with TelemetryServer(make_monitor()) as server:
            host, port = server.address
            first = LoadGenerator(
                host, port, dataset="netmon", events=events, seed=7,
                connections=2, block_size=block,
                series=N_SERIES, label_fanout=FANOUT,
            )
            first.run(stop_after=half)
            second = LoadGenerator(
                host, port, dataset="netmon", events=events, seed=7,
                connections=3, block_size=block,
                series=N_SERIES, label_fanout=FANOUT,
            )
            assert second.resume_offset() == half
            second.run(start_offset=half)
            with TelemetryClient(host, port) as client:
                served_snapshot = client.snapshot()
                served_group = client.group_by("lat", "region")

        offline = offline_labeled_reference(first.event_sequence())
        assert served_snapshot == offline.snapshot()
        assert served_group == offline.group_by("lat", "region")
