"""Section 5.4: data-redundancy (low-precision) throughput study."""


def test_redundancy(run_experiment):
    result = run_experiment("redundancy", scale=0.5, evaluations=20)
    data = result.data

    # Low-precision derivation helps on the tree substrate; the paper's
    # headline gains (1.8x-4.6x) are muted but present in pure Python.
    speedups = [payload["speedup"] for payload in data.values()]
    assert all(s > 0.85 for s in speedups)
    assert sum(speedups) / len(speedups) > 1.15
    # NetMon (integer, heavy redundancy after truncation) shows a clear
    # effect on both policies.
    assert data["exact/NetMon/tumbling"]["speedup"] > 1.2
    assert data["qlove/NetMon/sliding"]["speedup"] > 1.2
