"""The range-query equivalence battery.

For every registered mergeable policy, a quantile query answered from
stored per-period segments must be *bit-identical* to a fresh offline
run over the same periods — across seeds, range boundaries, and
compaction states.  Policies whose answers depend on global stream
position (``random``) are validated within rank-error tolerance
instead, and a classification test pins which side of the line every
registered policy falls on so a new policy cannot silently dodge the
battery.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketches.registry import available_policies
from repro.store import SegmentStore, query_at, query_range, query_series

from tests.store.conftest import (
    PHIS,
    as_wire,
    make_spec,
    offline_reference,
    stream_values,
    write_history,
)

#: Policies whose stored-segment answers are bit-identical to a fresh
#: sequential run (time-composable merge).  ``random`` is excluded: its
#: reservoir positions advance with the *global* stream, so per-period
#: deltas legitimately diverge and it is held to tolerance instead.
COMPOSABLE = ("am", "cmqs", "exact", "moment", "qlove")

SEEDS = (0, 7, 1234)

#: Range endpoints exercised against a 16-period history — interior
#: ranges, prefix/suffix, single periods, and full coverage, chosen to
#: cross every window boundary shape (aligned, straddling, sub-window).
RANGES = ((0, 16), (0, 1), (15, 16), (3, 11), (4, 8), (7, 9), (0, 4), (12, 16))

PERIODS = 16


def _store_for(tmp_path, policy, values, **params):
    spec = make_spec(policy, **params)
    store = write_history(tmp_path, [spec], values)
    return spec, store


class TestRangeEquivalence:
    """Stored-segment query == offline sequential run, bit for bit."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("policy", COMPOSABLE)
    def test_all_ranges_bit_identical(self, tmp_path, policy, seed):
        values = stream_values(seed, PERIODS)
        spec, store = _store_for(tmp_path, policy, values)
        for start, end in RANGES:
            result = query_range(store, spec.name, start, end)
            expected = as_wire(offline_reference(spec, values, start, end))
            assert result["quantiles"] == expected, (policy, seed, start, end)
            assert result["count"] == (end - start) * spec.window.period
            assert result["segments_merged"] == end - start

    @pytest.mark.parametrize("policy", COMPOSABLE)
    def test_point_in_time_matches_single_period_run(self, tmp_path, policy, battery_values):
        spec, store = _store_for(tmp_path, policy, battery_values)
        for period in (0, 5, PERIODS - 1):
            result = query_at(store, spec.name, period)
            expected = as_wire(offline_reference(spec, battery_values, period, period + 1))
            assert result["quantiles"] == expected

    @pytest.mark.parametrize("policy", COMPOSABLE)
    def test_series_buckets_each_match_offline(self, tmp_path, policy, battery_values):
        spec, store = _store_for(tmp_path, policy, battery_values)
        series = query_series(store, spec.name, 0, PERIODS, 4, PHIS)
        assert len(series["buckets"]) == 4
        for bucket in series["buckets"]:
            start, end = bucket["start_period"], bucket["end_period"]
            expected = as_wire(offline_reference(spec, battery_values, start, end))
            assert bucket["quantiles"] == expected

    @pytest.mark.parametrize("policy", COMPOSABLE)
    def test_reopened_store_answers_identically(self, tmp_path, policy, battery_values):
        spec, store = _store_for(tmp_path, policy, battery_values)
        before = query_range(store, spec.name, 2, 14)
        store.close()
        reopened = SegmentStore(str(tmp_path / "hist"))
        assert query_range(reopened, spec.name, 2, 14) == before

    def test_multiple_metrics_share_one_store(self, tmp_path, battery_values):
        specs = [make_spec(policy) for policy in COMPOSABLE]
        store = write_history(tmp_path, specs, battery_values)
        for spec in specs:
            result = query_range(store, spec.name, 5, 12)
            expected = as_wire(offline_reference(spec, battery_values, 5, 12))
            assert result["quantiles"] == expected

    @pytest.mark.parametrize("policy", COMPOSABLE)
    def test_requested_quantile_subset(self, tmp_path, policy, battery_values):
        spec, store = _store_for(tmp_path, policy, battery_values)
        result = query_range(store, spec.name, 0, 8, quantiles=[0.9])
        full = as_wire(offline_reference(spec, battery_values, 0, 8))
        assert result["quantiles"] == {"0.9": full["0.9"]}


class TestCompactionEquivalence:
    """Compaction must be answer-preserving for fully-covered ranges."""

    #: Rollup-aligned ranges for rollup_periods=4 over 16 periods.
    ALIGNED = ((0, 16), (0, 4), (4, 12), (8, 16), (12, 16))

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("policy", COMPOSABLE)
    def test_rollups_bit_identical_to_fine_segments(self, tmp_path, policy, seed):
        values = stream_values(seed, PERIODS)
        spec, store = _store_for(tmp_path, policy, values)
        fine = {
            (start, end): query_range(store, spec.name, start, end)
            for start, end in self.ALIGNED
        }
        built = store.compact(rollup_periods=4, min_age=0)
        assert built == 4
        for (start, end), before in fine.items():
            after = query_range(store, spec.name, start, end)
            assert after["quantiles"] == before["quantiles"], (policy, seed, start, end)
            assert after["count"] == before["count"]
            expected = as_wire(offline_reference(spec, values, start, end))
            assert after["quantiles"] == expected

    @pytest.mark.parametrize("policy", COMPOSABLE)
    def test_mixed_fine_and_rollup_cover(self, tmp_path, policy, battery_values):
        """min_age keeps the recent tail fine; queries spanning the rollup
        boundary merge rollups with fine segments and stay exact."""
        spec, store = _store_for(tmp_path, policy, battery_values)
        store.compact(rollup_periods=4, min_age=8)
        kinds = {s.kind for s in store.segments(spec.name)}
        assert kinds == {"period", "rollup"}
        result = query_range(store, spec.name, 4, 15)
        expected = as_wire(offline_reference(spec, battery_values, 4, 15))
        assert result["quantiles"] == expected

    @pytest.mark.parametrize("policy", COMPOSABLE)
    def test_repeated_compaction_stable(self, tmp_path, policy, battery_values):
        spec, store = _store_for(tmp_path, policy, battery_values)
        store.compact(rollup_periods=2, min_age=0)
        store.compact(rollup_periods=8, min_age=0)
        result = query_range(store, spec.name, 0, PERIODS)
        expected = as_wire(offline_reference(spec, battery_values, 0, PERIODS))
        assert result["quantiles"] == expected
        assert result["segments_merged"] == 2


class TestToleranceBattery:
    """Non-composable policies: stored answers stay within sketch error."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_within_rank_tolerance(self, tmp_path, seed):
        values = stream_values(seed, PERIODS)
        spec, store = _store_for(tmp_path, "random", values)
        for start, end in ((0, 16), (4, 12)):
            result = query_range(store, spec.name, start, end)
            window = np.sort(values[start * 250 : end * 250])
            n = len(window)
            for phi in PHIS:
                estimate = result["quantiles"][repr(phi)]
                rank = np.searchsorted(window, estimate) / n
                assert abs(rank - phi) < 0.08, (seed, start, end, phi)

    def test_random_segments_still_merge_and_count(self, tmp_path, battery_values):
        spec, store = _store_for(tmp_path, "random", battery_values)
        result = query_range(store, spec.name, 0, PERIODS)
        assert result["count"] == PERIODS * 250
        assert result["segments_merged"] == PERIODS


class TestBatteryCompleteness:
    """Every registered policy is classified and covered — no silent gaps."""

    def test_battery_covers_every_registered_policy(self):
        covered = set(COMPOSABLE) | {"random"}
        assert covered == set(available_policies()), (
            "a policy was registered without being added to the range-"
            "equivalence battery; classify it as composable or tolerance"
        )

    @pytest.mark.parametrize("policy", sorted(COMPOSABLE))
    def test_composable_flag_matches_battery_class(self, policy):
        assert make_spec(policy).build_policy().composable_over_time() is True

    def test_random_flagged_non_composable(self):
        assert make_spec("random").build_policy().composable_over_time() is False

    def test_qlove_samplek_burst_flagged_non_composable(self):
        policy = make_spec(
            "qlove", fewk={"samplek_fraction": 0.05, "burst_detection": True}
        ).build_policy()
        assert policy.composable_over_time() is False

    def test_qlove_samplek_without_burst_stays_composable(self):
        policy = make_spec(
            "qlove", fewk={"samplek_fraction": 0.05, "burst_detection": False}
        ).build_policy()
        assert policy.composable_over_time() is True
