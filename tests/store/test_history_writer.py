"""HistoryWriter: monitor attachment, checkpoint/resume, server wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.service.client import ServerError, TelemetryClient
from repro.service.monitor import Monitor
from repro.service.server import TelemetryServer
from repro.store import (
    HistoryWriter,
    RetentionPolicy,
    SegmentStore,
    StoreError,
    query_range,
    query_series,
    render_result,
)

from tests.store.conftest import (
    PHIS,
    as_wire,
    make_spec,
    offline_reference,
    stream_values,
)


def fresh_monitor(*specs) -> Monitor:
    monitor = Monitor()
    for spec in specs:
        monitor.register(spec)
    return monitor


class TestAttachment:
    def test_attach_registers_every_metric(self, tmp_path):
        specs = [make_spec("exact"), make_spec("cmqs")]
        monitor = fresh_monitor(*specs)
        writer = HistoryWriter(str(tmp_path / "hist"))
        writer.attach(monitor)
        assert sorted(writer.store.metrics()) == sorted(s.name for s in specs)

    def test_sink_fires_once_per_period(self, tmp_path, battery_values):
        spec = make_spec("exact")
        monitor = fresh_monitor(spec)
        writer = HistoryWriter(str(tmp_path / "hist"))
        writer.attach(monitor)
        monitor.observe_batch(spec.name, battery_values)
        assert writer.segments_written == 16
        assert writer.store.coverage(spec.name) == (0, 16)

    def test_partial_period_not_written(self, tmp_path):
        spec = make_spec("exact")
        monitor = fresh_monitor(spec)
        writer = HistoryWriter(str(tmp_path / "hist"))
        writer.attach(monitor)
        monitor.observe_batch(spec.name, stream_values(0, 1)[:200])
        assert writer.segments_written == 0
        remainder = stream_values(0, 1)[200:250]
        monitor.observe_batch(spec.name, remainder)
        assert writer.segments_written == 1

    def test_attach_mid_period_rejected(self, tmp_path):
        spec = make_spec("exact")
        monitor = fresh_monitor(spec)
        monitor.observe(spec.name, 1.0)
        writer = HistoryWriter(str(tmp_path / "hist"))
        with pytest.raises(ValueError, match="mid-period"):
            writer.attach(monitor)

    def test_double_attach_rejected(self, tmp_path):
        spec = make_spec("exact")
        monitor = fresh_monitor(spec)
        writer = HistoryWriter(str(tmp_path / "hist"))
        writer.attach(monitor)
        with pytest.raises(ValueError, match="already"):
            writer.attach(monitor)

    def test_merge_into_recording_channel_rejected(self, tmp_path):
        spec = make_spec("exact")
        monitor = fresh_monitor(spec)
        writer = HistoryWriter(str(tmp_path / "hist"))
        writer.attach(monitor)
        shard = fresh_monitor(spec)
        shard.observe_batch(spec.name, stream_values(1, 2))
        with pytest.raises(ValueError, match="merge shards first"):
            monitor.merge(shard)

    def test_retention_maintenance_every_n_appends(self, tmp_path, battery_values):
        spec = make_spec("exact")
        monitor = fresh_monitor(spec)
        writer = HistoryWriter(
            str(tmp_path / "hist"),
            retention=RetentionPolicy(max_periods=4),
            maintain_every=4,
        )
        writer.attach(monitor)
        monitor.observe_batch(spec.name, battery_values)
        start, end = writer.store.coverage(spec.name)
        assert end == 16
        assert start >= 8  # old periods pruned as ingest progressed

    def test_writer_observe_path_matches_batch_path(self, tmp_path):
        """Scalar observe() and observe_batch() produce identical segments."""
        spec_a, spec_b = make_spec("exact", name="a"), make_spec("exact", name="b")
        monitor = fresh_monitor(spec_a, spec_b)
        writer = HistoryWriter(str(tmp_path / "hist"))
        writer.attach(monitor)
        values = stream_values(5, 2)
        monitor.observe_batch("a", values)
        for value in values:
            monitor.observe("b", float(value))
        seg_a = writer.store.segments("a")
        seg_b = writer.store.segments("b")
        assert [s.state for s in seg_a] == [s.state for s in seg_b]


class TestCheckpointResume:
    def test_mid_period_recorder_rides_checkpoint(self, tmp_path, battery_values):
        """Kill after 5.5 periods, resume, finish: segments bit-identical
        to an uninterrupted run."""
        spec = make_spec("qlove")
        ckpt = str(tmp_path / "ckpt.json")
        cut = 5 * 250 + 125  # mid-period 5

        monitor = fresh_monitor(spec)
        writer = HistoryWriter(str(tmp_path / "a"))
        writer.attach(monitor)
        monitor.observe_batch(spec.name, battery_values[:cut])
        monitor.save(ckpt)
        writer.close()

        resumed = Monitor.load(ckpt)
        writer2 = HistoryWriter(str(tmp_path / "a"))
        writer2.attach(resumed)
        resumed.observe_batch(spec.name, battery_values[cut:])

        reference_store = SegmentStore(str(tmp_path / "b"))
        uninterrupted = fresh_monitor(spec)
        ref_writer = HistoryWriter(reference_store)
        ref_writer.attach(uninterrupted)
        uninterrupted.observe_batch(spec.name, battery_values)

        resumed_segments = writer2.store.segments(spec.name)
        reference_segments = reference_store.segments(spec.name)
        assert [s.state for s in resumed_segments] == [
            s.state for s in reference_segments
        ]

    def test_replay_from_checkpoint_is_duplicate_skipped(self, tmp_path, battery_values):
        """Re-ingesting pre-checkpoint periods after resume lands no
        duplicate segments (the at-least-once replay contract)."""
        spec = make_spec("exact")
        ckpt = str(tmp_path / "ckpt.json")
        monitor = fresh_monitor(spec)
        writer = HistoryWriter(str(tmp_path / "hist"))
        writer.attach(monitor)
        monitor.observe_batch(spec.name, battery_values[: 8 * 250])
        monitor.save(ckpt)
        writer.close()

        # Resume from an *older* state and replay the last 4 periods.
        resumed = Monitor.load(ckpt)
        resumed.reset()
        writer2 = HistoryWriter(str(tmp_path / "hist"))
        writer2.attach(resumed)
        resumed.observe_batch(spec.name, battery_values[: 8 * 250])
        assert writer2.store.coverage(spec.name) == (0, 8)
        assert writer2.store.duplicates_skipped == 8

    def test_checkpoint_without_history_still_loads(self, tmp_path, battery_values):
        """Pre-history checkpoints (no 'periods'/'history' fields) resume."""
        spec = make_spec("exact")
        monitor = fresh_monitor(spec)
        monitor.observe_batch(spec.name, battery_values[: 4 * 250])
        ckpt = str(tmp_path / "ckpt.json")
        monitor.save(ckpt)
        resumed = Monitor.load(ckpt)
        writer = HistoryWriter(str(tmp_path / "hist"))
        writer.attach(resumed)
        resumed.observe_batch(spec.name, battery_values[4 * 250 :])
        # Periods 0-3 predate the writer; 4-15 are recorded.
        assert writer.store.coverage(spec.name) == (4, 16)


class TestServerHistoryOp:
    @pytest.fixture()
    def serving(self, tmp_path, battery_values):
        spec = make_spec("exact", name="rtt")
        monitor = fresh_monitor(spec)
        writer = HistoryWriter(str(tmp_path / "hist"))
        writer.attach(monitor)
        server = TelemetryServer(monitor, history_writer=writer).start()
        host, port = server.address
        client = TelemetryClient(host, port)
        payload = battery_values.tolist()
        for p in range(16):
            client.observe("rtt", payload[p * 250 : (p + 1) * 250])
        try:
            yield spec, server, client, writer
        finally:
            client.close()
            server.stop()

    def test_history_op_matches_local_query_bytes(self, serving, battery_values):
        spec, _, client, writer = serving
        remote = client.history("rtt", start=2, end=14)
        local = query_range(writer.store, "rtt", 2, 14)
        assert render_result(remote) == render_result(local)
        assert remote == local
        expected = as_wire(offline_reference(spec, battery_values, 2, 14))
        assert remote["quantiles"] == expected

    def test_history_op_point_and_series(self, serving):
        _, _, client, writer = serving
        at = client.history("rtt", at=7)
        assert at["start_period"] == 7 and at["end_period"] == 8
        series = client.history("rtt", start=0, end=16, step=4, quantiles=[0.9])
        local = query_series(writer.store, "rtt", 0, 16, 4, [0.9])
        assert series == local

    def test_history_op_unknown_metric(self, serving):
        _, _, client, _ = serving
        with pytest.raises(ServerError, match="rtt"):
            client.history("nope", at=0)

    def test_history_op_range_outside_history(self, serving):
        _, _, client, _ = serving
        with pytest.raises(ServerError, match="outside committed history"):
            client.history("rtt", start=0, end=999)

    def test_history_op_requires_exactly_one_selector(self, serving):
        _, _, client, _ = serving
        with pytest.raises(ServerError, match="not both|neither"):
            client.request({"op": "history", "metric": "rtt", "at": 0, "start": 0, "end": 1})
        with pytest.raises(ServerError, match="not both|neither"):
            client.request({"op": "history", "metric": "rtt"})

    def test_history_op_without_writer_is_actionable(self, battery_values):
        spec = make_spec("exact", name="rtt")
        server = TelemetryServer(fresh_monitor(spec)).start()
        host, port = server.address
        client = TelemetryClient(host, port)
        try:
            with pytest.raises(ServerError, match="--history"):
                client.history("rtt", at=0)
        finally:
            client.close()
            server.stop()

    def test_stop_flushes_writer(self, tmp_path, battery_values):
        spec = make_spec("exact", name="rtt")
        monitor = fresh_monitor(spec)
        writer = HistoryWriter(str(tmp_path / "hist"))
        writer.attach(monitor)
        server = TelemetryServer(monitor, history_writer=writer).start()
        host, port = server.address
        client = TelemetryClient(host, port)
        client.observe("rtt", battery_values[: 2 * 250].tolist())
        client.close()
        server.stop()
        # stop() closed the writer: no open log handles, data durable.
        assert writer.store._handles == {}
        reopened = SegmentStore(str(tmp_path / "hist"))
        assert reopened.coverage("rtt") == (0, 2)


class TestWriterLifecycle:
    def test_context_manager_closes_store(self, tmp_path):
        spec = make_spec("exact")
        monitor = fresh_monitor(spec)
        with HistoryWriter(str(tmp_path / "hist")) as writer:
            writer.attach(monitor)
            monitor.observe_batch(spec.name, stream_values(0, 2))
        reopened = SegmentStore(str(tmp_path / "hist"))
        assert reopened.coverage(spec.name) == (0, 2)

    def test_stats_shape(self, tmp_path, battery_values):
        spec = make_spec("exact")
        monitor = fresh_monitor(spec)
        writer = HistoryWriter(str(tmp_path / "hist"))
        writer.attach(monitor)
        monitor.observe_batch(spec.name, battery_values)
        stats = writer.stats()
        assert stats["segments_written"] == 16
        assert stats["metrics"][spec.name]["segments"] == 16

    def test_retention_requires_owned_store(self, tmp_path):
        store = SegmentStore(str(tmp_path / "hist"))
        with pytest.raises(ValueError, match="retention"):
            HistoryWriter(store, retention=RetentionPolicy(max_periods=4))

    def test_maintain_every_validated(self, tmp_path):
        with pytest.raises(ValueError, match="maintain_every"):
            HistoryWriter(str(tmp_path / "hist"), maintain_every=0)
