"""ExecutionPlan + StreamEngine.execute: mode resolution and equivalence."""

import numpy as np
import pytest

from repro.sketches.base import PolicyOperator
from repro.sketches.registry import make_policy
from repro.streaming import (
    CountWindow,
    ExecutionPlan,
    Query,
    StreamEngine,
    chunk_stream,
    value_stream,
)

WINDOW = CountWindow(size=240, period=60)
PHIS = (0.5, 0.9, 0.99)


@pytest.fixture(scope="module")
def values():
    rng = np.random.default_rng(7)
    return rng.lognormal(mean=6.0, sigma=0.5, size=1_500)


def operator(policy="qlove"):
    return PolicyOperator(make_policy(policy, PHIS, WINDOW))


def factory():
    return make_policy("qlove", PHIS, WINDOW)


# ----------------------------------------------------------------------
# Plan validation
# ----------------------------------------------------------------------
def test_unknown_mode_rejected():
    with pytest.raises(ValueError, match="unknown execution mode"):
        ExecutionPlan(mode="turbo")


def test_n_shards_must_be_positive():
    with pytest.raises(ValueError, match="n_shards"):
        ExecutionPlan(n_shards=0)


@pytest.mark.parametrize("mode", ["events", "batched"])
def test_shard_count_conflicts_with_single_engine_modes(mode):
    with pytest.raises(ValueError, match="requires mode 'sharded' or 'auto'"):
        ExecutionPlan(mode=mode, n_shards=4)


def test_unknown_partitioner_rejected():
    with pytest.raises(ValueError, match="partitioner"):
        ExecutionPlan(partitioner="zigzag")


def test_chunk_size_and_processes_validated():
    with pytest.raises(ValueError, match="chunk_size"):
        ExecutionPlan(chunk_size=0)
    with pytest.raises(ValueError, match="processes"):
        ExecutionPlan(processes=0)


def test_parallel_requires_sharded_capable_mode():
    with pytest.raises(ValueError, match="parallel"):
        ExecutionPlan(mode="batched", parallel=True)
    # auto with a single shard resolves to a single-engine path, where
    # parallel would be silently ignored — reject it up front too.
    with pytest.raises(ValueError, match="parallel"):
        ExecutionPlan(mode="auto", n_shards=1, parallel=True)
    assert ExecutionPlan(mode="auto", n_shards=2, parallel=True).parallel
    assert ExecutionPlan(mode="sharded", parallel=True, processes=2).processes == 2


def test_processes_requires_parallel():
    with pytest.raises(ValueError, match="parallel=True"):
        ExecutionPlan(mode="sharded", n_shards=2, processes=4)


def test_with_policy_factory_round_trip():
    plan = ExecutionPlan(mode="sharded", n_shards=2).with_policy_factory(factory)
    assert plan.policy_factory is factory
    assert plan.n_shards == 2


# ----------------------------------------------------------------------
# Auto-mode resolution (the acceptance criterion)
# ----------------------------------------------------------------------
def test_auto_equals_events_for_event_sources(values):
    engine = StreamEngine()
    auto = engine.execute_to_list(
        Query(value_stream(values)).windowed_by(WINDOW).aggregate(operator())
    )
    explicit = engine.execute_to_list(
        Query(value_stream(values)).windowed_by(WINDOW).aggregate(operator()),
        ExecutionPlan(mode="events"),
    )
    assert auto == explicit
    assert len(auto) > 0


def test_auto_equals_batched_for_chunk_sources(values):
    engine = StreamEngine()
    auto = engine.execute_to_list(
        Query(chunk_stream(values, 128)).windowed_by(WINDOW).aggregate(operator())
    )
    explicit = engine.execute_to_list(
        Query(chunk_stream(values, 128)).windowed_by(WINDOW).aggregate(operator()),
        ExecutionPlan(mode="batched"),
    )
    assert auto == explicit


def test_auto_equals_batched_for_array_sources(values):
    engine = StreamEngine()
    auto = engine.execute_to_list(
        Query(values).windowed_by(WINDOW).aggregate(operator())
    )
    explicit = engine.execute_to_list(
        Query(values).windowed_by(WINDOW).aggregate(operator()),
        ExecutionPlan(mode="batched"),
    )
    per_event = engine.execute_to_list(
        Query(value_stream(values)).windowed_by(WINDOW).aggregate(operator()),
        ExecutionPlan(mode="events"),
    )
    assert auto == explicit == per_event


@pytest.mark.parametrize("n_shards", [1, 4])
def test_auto_matches_explicit_sharded_and_batched(values, n_shards):
    """ExecutionPlan(mode='auto') vs explicit modes, bit-for-bit."""
    engine = StreamEngine()
    batched = engine.execute_to_list(
        Query(values).windowed_by(WINDOW).aggregate(operator()),
        ExecutionPlan(mode="batched"),
    )
    if n_shards == 1:
        # auto with one shard resolves to the batched single-engine path
        auto = engine.execute_to_list(
            Query(values).windowed_by(WINDOW).aggregate(operator()),
            ExecutionPlan(n_shards=1, policy_factory=factory),
        )
        assert auto == batched
        return
    auto = engine.execute_to_list(
        Query(values).windowed_by(WINDOW),
        ExecutionPlan(n_shards=n_shards, policy_factory=factory),
    )
    explicit = engine.execute_to_list(
        Query(values).windowed_by(WINDOW),
        ExecutionPlan(mode="sharded", n_shards=n_shards, policy_factory=factory),
    )
    assert auto == explicit == batched


def test_auto_uses_per_event_path_for_event_filters(values):
    """Event-level where() forces (and works on) the per-event loop."""
    engine = StreamEngine()
    threshold = float(np.median(values))
    filtered = engine.execute_to_list(
        Query(value_stream(values))
        .windowed_by(CountWindow(size=120, period=30))
        .where(lambda e: e.value >= threshold)
        .aggregate(PolicyOperator(make_policy("exact", PHIS, CountWindow(120, 30)))),
    )
    kept = values[values >= threshold]
    reference = engine.execute_to_list(
        Query(kept)
        .windowed_by(CountWindow(size=120, period=30))
        .aggregate(PolicyOperator(make_policy("exact", PHIS, CountWindow(120, 30)))),
    )
    assert filtered == reference


def test_auto_uses_batched_path_for_chunk_filters(values):
    """Vectorised where_values() forces the batched loop."""
    engine = StreamEngine()
    threshold = float(np.median(values))
    small = CountWindow(size=120, period=30)
    filtered = engine.execute_to_list(
        Query(chunk_stream(values, 256))
        .windowed_by(small)
        .where_values(lambda v: v >= threshold)
        .aggregate(PolicyOperator(make_policy("exact", PHIS, small))),
    )
    reference = engine.execute_to_list(
        Query(values[values >= threshold])
        .windowed_by(small)
        .aggregate(PolicyOperator(make_policy("exact", PHIS, small))),
    )
    assert filtered == reference


def test_array_source_on_events_mode(values):
    """A raw ndarray runs on the per-event loop too (wrapped into events)."""
    engine = StreamEngine()
    via_array = engine.execute_to_list(
        Query(values).windowed_by(WINDOW).aggregate(operator()),
        ExecutionPlan(mode="events"),
    )
    via_stream = engine.execute_to_list(
        Query(value_stream(values)).windowed_by(WINDOW).aggregate(operator()),
        ExecutionPlan(mode="events"),
    )
    assert via_array == via_stream


def test_empty_source_yields_no_results():
    engine = StreamEngine()
    assert engine.execute_to_list(
        Query(iter(())).windowed_by(WINDOW).aggregate(operator())
    ) == []


def test_peeked_source_loses_no_elements(values):
    """Auto-mode peeking must re-chain the first generator element."""
    engine = StreamEngine()
    via_generator = engine.execute_to_list(
        Query(iter(list(value_stream(values))))
        .windowed_by(WINDOW)
        .aggregate(operator())
    )
    via_list = engine.execute_to_list(
        Query(list(value_stream(values))).windowed_by(WINDOW).aggregate(operator())
    )
    assert via_generator == via_list


def test_sharded_rejects_operator_factory_disagreement(values):
    """The query's operator policy and the shard factory must agree."""
    from repro.core.config import QLOVEConfig

    engine = StreamEngine()
    custom = PolicyOperator(
        make_policy("qlove", PHIS, WINDOW, config=QLOVEConfig(quantize_digits=2))
    )
    with pytest.raises(ValueError, match="disagree on 'config'"):
        list(
            engine.execute(
                Query(values).windowed_by(WINDOW).aggregate(custom),
                ExecutionPlan(mode="sharded", n_shards=2, policy_factory=factory),
            )
        )


def test_sharded_rejects_operator_factory_type_mismatch(values):
    engine = StreamEngine()
    exact_operator = PolicyOperator(make_policy("exact", PHIS, WINDOW))
    with pytest.raises(TypeError, match="cannot merge"):
        list(
            engine.execute(
                Query(values).windowed_by(WINDOW).aggregate(exact_operator),
                ExecutionPlan(mode="sharded", n_shards=2, policy_factory=factory),
            )
        )


def test_sharded_without_factory_is_actionable(values):
    engine = StreamEngine()
    with pytest.raises(ValueError, match="policy_factory"):
        list(
            engine.execute(
                Query(values).windowed_by(WINDOW),
                ExecutionPlan(mode="sharded", n_shards=2),
            )
        )


def test_execute_requires_window(values):
    with pytest.raises(ValueError, match="window"):
        list(StreamEngine().execute(Query(values)))
