"""The serving wire protocol: newline-delimited JSON over a stream socket.

One message per line, UTF-8, stdlib ``json`` — the format Chambers et
al.'s incremental-collector deployment shape calls for: long-lived
connections from many networked components into one bounded-memory
collector, with no dependency heavier than a TCP socket on either side.

Requests are objects with an ``"op"`` key; every request receives exactly
one response object with an ``"ok"`` boolean (``true`` plus op-specific
payload, or ``false`` plus a one-line ``"error"``).  The full op
vocabulary — ``observe``, ``snapshot``, ``results``, ``flush``,
``stats``, ``checkpoint``, ``shutdown``, ``ping``, ``hello``, ``state``,
``merge`` — is documented in ``docs/serving.md``; both
:class:`~repro.service.server.TelemetryServer` and
:class:`~repro.service.client.TelemetryClient` speak only through the
helpers here, so the framing lives in one place.

JSON is the connect-time default and the debugging dialect.  A client may
send ``{"op": "hello", "protocol": "binary"}`` to switch the connection
to the length-prefixed binary framing in :mod:`repro.service.binary` —
raw float64 observe payloads and opaque serialized-sketch frames —
which exists for the hot ingest path.
"""

from __future__ import annotations

import json
import socket
from typing import BinaryIO, Optional

#: Hard cap on one encoded message (guards the server against a stray
#: client streaming an unbounded line into memory).  64 MiB comfortably
#: holds an ``observe`` block of ~2M float64 values in decimal form.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed frame: not JSON, not an object, or oversized."""


class FrameTooLarge(ProtocolError):
    """A frame above :data:`MAX_MESSAGE_BYTES`.

    On the JSON wire an oversized frame leaves its unread tail in the
    stream — the receiver must close the connection, or the tail bytes
    would be misread as later frames (``recoverable`` is ``False``).
    The length-prefixed binary framing can instead drain the payload and
    keep the connection; :func:`repro.service.binary.recv_frame` raises
    with ``recoverable=True`` after re-synchronising the stream.
    """

    #: Whether the receiver re-synchronised the stream past the oversized
    #: frame, making it safe to keep reading from the connection.
    recoverable: bool = False


class ConnectionClosed(ConnectionError):
    """The peer closed the connection mid-conversation."""


def encode_message(message: dict) -> bytes:
    """One protocol frame: compact JSON plus the terminating newline.

    Non-finite floats are rejected: ``json.dumps`` would emit the
    ``NaN``/``Infinity`` tokens, which are not valid JSON and break any
    non-python peer.  The binary protocol carries them natively.
    """
    if not isinstance(message, dict):
        raise ProtocolError(
            f"protocol messages are JSON objects, got {type(message).__name__}"
        )
    try:
        payload = json.dumps(message, separators=(",", ":"), allow_nan=False)
    except ValueError as exc:
        raise ProtocolError(
            f"message is not JSON-encodable ({exc}); non-finite floats "
            "(NaN/Infinity) have no valid JSON representation — drop or "
            "canonicalise them before sending, or negotiate the binary "
            "protocol, which carries IEEE-754 payloads natively"
        ) from None
    return payload.encode("utf-8") + b"\n"


def send_message(sock: socket.socket, message: dict) -> None:
    """Write one frame to ``sock`` (blocking, all-or-nothing)."""
    sock.sendall(encode_message(message))


def recv_message(stream: BinaryIO) -> Optional[dict]:
    """Read one frame from a buffered socket file.

    Returns ``None`` on a clean EOF (peer closed between messages);
    raises :class:`ConnectionClosed` on EOF mid-line and
    :class:`ProtocolError` on an unparsable or oversized frame.
    """
    line = stream.readline(MAX_MESSAGE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_MESSAGE_BYTES:
        raise FrameTooLarge(
            f"message exceeds {MAX_MESSAGE_BYTES} bytes; split observe "
            "batches into smaller blocks (closing the connection: the "
            "rest of the oversized line cannot be re-synchronised)"
        )
    if not line.endswith(b"\n"):
        # A line of exactly MAX_MESSAGE_BYTES with no newline is ambiguous:
        # either the peer died mid-message, or the line is oversized and a
        # short read stopped at the cap.  One probe byte disambiguates —
        # more data means the frame is too large, EOF means the peer closed.
        if len(line) == MAX_MESSAGE_BYTES and stream.read(1):
            raise FrameTooLarge(
                f"message exceeds {MAX_MESSAGE_BYTES} bytes; split observe "
                "batches into smaller blocks (closing the connection: the "
                "rest of the oversized line cannot be re-synchronised)"
            )
        raise ConnectionClosed("connection closed mid-message")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON ({exc})") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


def error_response(message: str) -> dict:
    """The uniform failure response."""
    return {"ok": False, "error": message}


def ok_response(**payload: object) -> dict:
    """The uniform success response."""
    response = {"ok": True}
    response.update(payload)
    return response
