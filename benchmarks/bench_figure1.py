"""Figure 1: the NetMon histogram and its published anchors."""


def test_figure1(run_experiment):
    result = run_experiment("figure1", scale=1.0)
    # Paper anchors: Q0.5 = 798, >90% below 1,247, Q0.99 = 1,874, long tail.
    assert 700 < result.data["q50"] < 900
    assert 1000 < result.data["q90"] < 1500
    assert 1400 < result.data["q99"] < 2700
    assert result.data["max"] > 20_000
    # Figure-1 shape: the modal bin sits in the sub-2,000us body and the
    # tail bins are sparse.
    counts = result.data["counts"]
    assert counts.index(max(counts)) <= 3
    assert max(counts[-5:]) < max(counts) / 100
