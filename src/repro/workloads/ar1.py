"""AR(1) streams for the non-i.i.d. robustness study (Table 5).

"We generate a non-i.i.d. dataset from an AR(1) model with coefficient
psi in {0.1, ..., 0.9}, where psi represents the correlation between a
data point and its next data point.  Data points in the dataset are
identically and normally distributed, with a mean of 1 million and a
standard deviation of 50 thousand" (Section 5.4).

The innovation variance is scaled by ``1 - psi^2`` so the *marginal*
distribution stays N(mean, std^2) for every psi; psi = 0 reduces to the
i.i.d. normal dataset.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np


def generate_ar1(
    size: int,
    psi: float,
    mean: float = 1e6,
    std: float = 5e4,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Generate an AR(1) stream with marginal N(mean, std^2)."""
    if size <= 0:
        raise ValueError("size must be positive")
    if not -1.0 < psi < 1.0:
        raise ValueError(f"psi must be in (-1, 1), got {psi}")
    if std <= 0:
        raise ValueError("std must be positive")
    rng = np.random.default_rng(seed)
    innovations = rng.normal(0.0, std * math.sqrt(1.0 - psi * psi), size=size)
    # Start from the stationary distribution so the whole stream is marginal
    # N(0, std^2) without a burn-in.
    innovations[0] = rng.normal(0.0, std)
    centered = _ar1_filter(innovations, psi)
    return centered + mean


def _ar1_filter(innovations: np.ndarray, psi: float) -> np.ndarray:
    """x_t = psi * x_{t-1} + innovations_t, vectorised when scipy exists."""
    try:
        from scipy.signal import lfilter
    except ImportError:
        out = np.empty_like(innovations)
        previous = 0.0
        for t, eps in enumerate(innovations):
            previous = psi * previous + eps
            out[t] = previous
        return out
    return lfilter([1.0], [1.0, -psi], innovations)
