"""Shared test helpers: policy drivers and exact oracles."""

import math

import numpy as np
import pytest

from repro.sketches.base import PolicyOperator
from repro.streaming import CountWindow, Query, StreamEngine, value_stream


def exact_quantile(window_values, phi):
    """Paper rank convention: element of rank ceil(phi * N), 1-based."""
    ordered = np.sort(np.asarray(window_values, dtype=float))
    rank = max(1, math.ceil(phi * len(ordered)))
    return float(ordered[rank - 1])


def rank_error(window_values, estimate, phi):
    """Normalised rank distance |r - r'| / N of an estimate (paper's e')."""
    ordered = np.sort(np.asarray(window_values, dtype=float))
    n = len(ordered)
    target = max(1, math.ceil(phi * n))
    lo = int(np.searchsorted(ordered, estimate, side="left")) + 1
    hi = int(np.searchsorted(ordered, estimate, side="right"))
    if lo <= target <= hi:
        return 0.0
    distance = min(abs(target - lo), abs(target - hi))
    return distance / n


def drive_policy(policy, values, window: CountWindow):
    """Run a policy through the streaming engine over raw values.

    Returns (results, window_slices): per evaluation, the policy's
    {phi: estimate} dict and the numpy array of the exact window content.
    """
    query = Query(value_stream(values)).windowed_by(window).aggregate(PolicyOperator(policy))
    results = []
    slices = []
    arr = np.asarray(values, dtype=float)
    for res in StreamEngine().run(query):
        end = int(res.end)
        results.append(res.result)
        slices.append(arr[end - window.size : end])
    return results, slices


@pytest.fixture(scope="session")
def heavy_tailed_values():
    """A NetMon-like heavy-tailed integer stream for sketch tests."""
    rng = np.random.default_rng(42)
    body = rng.lognormal(mean=6.7, sigma=0.35, size=20_000)
    tail_mask = rng.random(20_000) < 0.01
    tail = rng.pareto(1.5, size=20_000) * 5_000 + 2_000
    values = np.where(tail_mask, tail, body)
    return np.round(values).astype(float)
