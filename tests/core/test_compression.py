"""Value compression: significant-digit quantization."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Quantizer, quantize_array, quantize_significant


class TestQuantizeSignificant:
    def test_paper_examples(self):
        # NetMon latencies from the paper, kept to 3 significant digits.
        assert quantize_significant(74265.0) == 74200.0
        assert quantize_significant(1247.0) == 1240.0
        assert quantize_significant(1874.0) == 1870.0

    def test_small_values_pass_through(self):
        assert quantize_significant(798.0) == 798.0
        assert quantize_significant(7.0) == 7.0
        assert quantize_significant(999.0) == 999.0

    def test_zero_and_nonfinite(self):
        assert quantize_significant(0.0) == 0.0
        assert math.isnan(quantize_significant(float("nan")))
        assert quantize_significant(float("inf")) == float("inf")

    def test_negative_values(self):
        assert quantize_significant(-74265.0) == -74200.0

    def test_digits_parameter(self):
        assert quantize_significant(74265.0, digits=1) == 70000.0
        assert quantize_significant(74265.0, digits=5) == 74265.0

    def test_invalid_digits(self):
        with pytest.raises(ValueError):
            quantize_significant(1.0, digits=0)

    @settings(max_examples=200, deadline=None)
    @given(st.floats(min_value=1.0, max_value=1e12))
    def test_property_relative_error_below_1pct(self, value):
        q = quantize_significant(value, digits=3)
        # Truncation never adds more than one unit in the last kept digit;
        # the tiny negative slack absorbs binary representation of decimals
        # (e.g. 1.9 quantizes to the float nearest 1.90).
        assert -1e-12 <= (value - q) / value < 0.01

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=1.0, max_value=1e9))
    def test_property_idempotent(self, value):
        q = quantize_significant(value, digits=3)
        assert quantize_significant(q, digits=3) == q

    @settings(max_examples=100, deadline=None)
    @given(
        st.floats(min_value=1.0, max_value=1e9),
        st.floats(min_value=1.0, max_value=1e9),
    )
    def test_property_monotone(self, a, b):
        qa = quantize_significant(a, digits=3)
        qb = quantize_significant(b, digits=3)
        if a <= b:
            assert qa <= qb


class TestQuantizeArray:
    def test_matches_scalar(self):
        values = np.array([74265.0, 1247.0, 798.0, 0.0, -5555.0])
        expected = np.array([quantize_significant(v) for v in values])
        np.testing.assert_array_equal(quantize_array(values), expected)

    def test_empty(self):
        out = quantize_array(np.array([]))
        assert out.size == 0

    def test_all_zero(self):
        np.testing.assert_array_equal(quantize_array(np.zeros(5)), np.zeros(5))

    def test_large_random_agreement(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(1, 1e7, size=5000)
        fast = quantize_array(values)
        slow = np.array([quantize_significant(float(v)) for v in values])
        np.testing.assert_allclose(fast, slow, rtol=0, atol=0)

    def test_invalid_digits(self):
        with pytest.raises(ValueError):
            quantize_array(np.array([1.0]), digits=0)


class TestQuantizer:
    def test_enabled(self):
        q = Quantizer(3)
        assert q.enabled
        assert q(74265.0) == 74200.0

    def test_disabled(self):
        q = Quantizer(None)
        assert not q.enabled
        assert q(74265.123) == 74265.123

    def test_apply_array(self):
        q = Quantizer(2)
        np.testing.assert_array_equal(
            q.apply(np.array([1234.0])), np.array([1200.0])
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            Quantizer(0)

    def test_increases_redundancy(self):
        # The whole point: quantization shrinks the unique-value set.
        rng = np.random.default_rng(2)
        values = rng.lognormal(6.7, 0.35, size=50_000)
        raw_unique = len(np.unique(values))
        quantized_unique = len(np.unique(quantize_array(values)))
        assert quantized_unique < raw_unique / 20
