"""SeriesIndex lifecycle: lazy creation, deterministic eviction, serde.

The pinned property throughout: eviction is a serde round-trip, so no
sequence of evictions and resurrections can change any answer — and the
index's future behaviour after ``from_state`` is indistinguishable from
the saved instance's.
"""

import pytest

from repro import serde
from repro.series import SeriesIndex
from repro.service.spec import MetricSpec

from tests.series.conftest import make_family_spec, stream_values


def small_spec(series=None, **kwargs):
    """A quick labeled spec: tiny window so evaluations actually emit."""
    return make_family_spec(
        "exact", window={"size": 40, "period": 10}, series=series, **kwargs
    )


def fill(index, values, labelsets):
    for i, value in enumerate(values):
        index.observe(labelsets[i % len(labelsets)], float(value))


LS = [
    {"region": "eu", "host": "a"},
    {"region": "eu", "host": "b"},
    {"region": "us", "host": "c"},
]


class TestLifecycle:
    def test_rejects_unlabeled_spec(self):
        plain = MetricSpec(
            name="m", quantiles=[0.5], window={"size": 10, "period": 5}
        )
        with pytest.raises(ValueError, match="no label schema"):
            SeriesIndex(plain)

    def test_series_materialise_lazily_per_labelset(self):
        index = SeriesIndex(small_spec())
        assert index.active_count() == 0
        index.observe(LS[0], 1.0)
        index.observe(LS[0], 2.0)
        assert index.active_count() == 1
        index.observe(LS[1], 3.0)
        assert index.active_count() == 2
        assert index.stats()["created"] == 2

    def test_series_and_snapshot_are_canonically_ordered(self):
        index = SeriesIndex(small_spec())
        fill(index, stream_values(0, 30), [LS[2], LS[0], LS[1]])
        keys = index.series()
        assert keys == sorted(keys)
        assert list(index.snapshot()) == keys

    def test_seen_totals_all_series(self):
        index = SeriesIndex(small_spec())
        fill(index, stream_values(0, 31), LS)
        assert index.seen() == 31

    def test_results_for_unknown_series_names_the_known_ones(self):
        index = SeriesIndex(small_spec())
        index.observe(LS[0], 1.0)
        with pytest.raises(KeyError, match="known series"):
            index.results({"region": "eu", "host": "zzz"})

    def test_results_validates_the_labelset(self):
        index = SeriesIndex(small_spec())
        with pytest.raises(ValueError, match="missing label"):
            index.results({"region": "eu"})

    def test_observe_batch_matches_elementwise_observe(self):
        values = stream_values(3, 25)
        one = SeriesIndex(small_spec())
        one.observe_batch(LS[0], values)
        other = SeriesIndex(small_spec())
        for value in values:
            other.observe(LS[0], float(value))
        assert one.snapshot() == other.snapshot()
        assert one.results(LS[0]) == other.results(LS[0])


class TestEviction:
    def test_lru_evicts_least_recently_observed(self):
        index = SeriesIndex(small_spec(series={"max_active": 2}))
        index.observe(LS[0], 1.0)
        index.observe(LS[1], 2.0)
        index.observe(LS[0], 3.0)  # LS[1] is now the LRU series
        index.observe(LS[2], 4.0)  # third series: something must go
        assert index.active_count() == 2
        assert index.evicted_count() == 1
        sealed = [k for k in index.series() if index._active_entry(k) is None]
        assert sealed == ["m_exact{host=b,region=eu}"]

    def test_evicted_series_still_answers_everything(self):
        index = SeriesIndex(small_spec(series={"max_active": 1}))
        fill(index, stream_values(1, 40), [LS[0]])
        before_snapshot = index.snapshot()
        before_results = index.results(LS[0])
        index.observe(LS[1], 1.0)  # evicts LS[0]
        assert index.evicted_count() == 1
        assert index.seen() == 41
        key = "m_exact{host=a,region=eu}"
        assert index.snapshot()[key] == before_snapshot[key]
        assert index.results(LS[0]) == before_results

    def test_resurrection_is_bit_identical(self):
        values = stream_values(2, 90)
        thrash = SeriesIndex(small_spec(series={"max_active": 1}))
        fill(thrash, values, LS)  # every observation evicts the previous
        calm = SeriesIndex(small_spec())
        fill(calm, values, LS)
        assert thrash.snapshot() == calm.snapshot()
        for ls in LS:
            assert thrash.results(ls) == calm.results(ls)
        stats = thrash.stats()
        assert stats["evictions"] > 0 and stats["resurrections"] > 0

    def test_idle_ttl_evicts_on_materialisation(self):
        index = SeriesIndex(small_spec(series={"idle_ttl": 3}))
        index.observe(LS[0], 1.0)
        for _ in range(4):
            index.observe(LS[1], 2.0)
        # LS[0] is idle past the TTL; a new series triggers the sweep.
        index.observe(LS[2], 3.0)
        assert index._active_entry("m_exact{host=a,region=eu}") is None
        assert index.evicted_count() == 1

    def test_evict_idle_is_explicit_and_counts(self):
        index = SeriesIndex(small_spec(series={"idle_ttl": 2}))
        index.observe(LS[0], 1.0)
        for _ in range(5):
            index.observe(LS[1], 2.0)
        assert index.evict_idle() == 1
        assert index.active_count() == 1

    def test_evict_idle_without_ttl_is_a_noop(self):
        index = SeriesIndex(small_spec())
        index.observe(LS[0], 1.0)
        assert index.evict_idle() == 0
        assert index.active_count() == 1

    def test_sole_series_never_evicts_itself(self):
        index = SeriesIndex(small_spec(series={"max_active": 1}))
        for value in stream_values(0, 50):
            index.observe(LS[0], float(value))
        assert index.active_count() == 1
        assert index.stats()["evictions"] == 0


class TestShardInvariance:
    @pytest.mark.parametrize("shards", [1, 3, 8])
    def test_answers_independent_of_shard_count(self, shards):
        values = stream_values(7, 60)
        sharded = SeriesIndex(small_spec(series={"shards": shards}))
        fill(sharded, values, LS)
        reference = SeriesIndex(small_spec())
        fill(reference, values, LS)
        assert sharded.snapshot() == reference.snapshot()
        assert sharded.group_by("region") == reference.group_by("region")
        assert sharded.stats()["shards"] == shards


class TestStats:
    def test_counters_and_memory_estimate(self):
        index = SeriesIndex(small_spec(series={"max_active": 2}))
        fill(index, stream_values(0, 50), LS)
        stats = index.stats()
        assert stats["active"] == 2
        assert stats["evicted"] == 1
        assert stats["created"] == 3
        assert stats["max_active"] == 2 and stats["idle_ttl"] is None
        assert stats["active_space"] > 0
        assert stats["evicted_state_bytes"] > 0
        assert stats["memory_estimate_bytes"] == (
            stats["active_space"] * 8 + stats["evicted_state_bytes"]
        )

    def test_report_is_channel_shape_compatible_plus_series_block(self):
        index = SeriesIndex(small_spec())
        fill(index, stream_values(0, 45), LS)
        report = index.report()
        for field in ("policy", "window", "seen", "evaluations", "space",
                      "peak_space"):
            assert field in report
        assert report["labels"] == ["host", "region"]
        assert report["seen"] == 45
        assert report["series"]["active"] == 3


class TestSerde:
    def test_round_trip_preserves_every_answer(self):
        index = SeriesIndex(small_spec(series={"max_active": 2}))
        fill(index, stream_values(5, 70), LS)
        restored = SeriesIndex.from_state(index.to_state())
        assert restored.snapshot() == index.snapshot()
        assert restored.stats() == index.stats()
        assert restored.series() == index.series()
        for ls in LS:
            assert restored.results(ls) == index.results(ls)

    def test_future_behaviour_indistinguishable_after_restore(self):
        head, tail = stream_values(6, 60), stream_values(16, 60)
        index = SeriesIndex(small_spec(series={"max_active": 2}))
        fill(index, head, LS)
        restored = SeriesIndex.from_state(index.to_state())
        fill(index, tail, LS)
        fill(restored, tail, LS)
        assert restored.snapshot() == index.snapshot()
        assert restored.stats() == index.stats()

    def test_state_is_json_safe(self):
        import json

        index = SeriesIndex(small_spec(series={"max_active": 1}))
        fill(index, stream_values(0, 30), LS)
        state = json.loads(json.dumps(index.to_state()))
        assert SeriesIndex.from_state(state).snapshot() == index.snapshot()

    def test_invalid_spec_in_state_is_actionable(self):
        index = SeriesIndex(small_spec())
        state = index.to_state()
        state["spec"]["policy"] = "nope"
        with pytest.raises(serde.StateError, match="invalid spec"):
            SeriesIndex.from_state(state)

    def test_missing_field_is_actionable(self):
        state = SeriesIndex(small_spec()).to_state()
        del state["tick"]
        with pytest.raises(serde.StateError, match="tick"):
            SeriesIndex.from_state(state)


class TestMergeFrom:
    def test_disjoint_series_are_adopted_bit_identically(self):
        left = SeriesIndex(small_spec())
        right = SeriesIndex(small_spec())
        fill(left, stream_values(0, 40), [LS[0]])
        fill(right, stream_values(1, 40), [LS[1], LS[2]])
        left.merge_from(right)
        assert len(left.series()) == 3
        assert left.series() == sorted(left.series())
        assert left.results(LS[1]) == right.results(LS[1])
        # Donor untouched.
        assert right.active_count() == 2

    def test_overlapping_series_merge_channelwise(self):
        values = stream_values(4, 40)
        left = SeriesIndex(small_spec())
        right = SeriesIndex(small_spec())
        fill(left, values[:20], [LS[0]])
        fill(right, values[20:], [LS[0]])
        left.merge_from(right)
        assert left.seen() == 40

    def test_evicted_series_contribute_like_active_ones(self):
        values = stream_values(9, 60)
        sealed = SeriesIndex(small_spec(series={"max_active": 1}))
        fill(sealed, values, LS)  # two of three end up evicted
        assert sealed.evicted_count() == 2
        target = SeriesIndex(small_spec(series={"max_active": 1}))
        target.merge_from(sealed)
        # Every donor series arrived with its full answer, sealed or not —
        # and matches an eviction-free run of the same stream.
        assert target.seen() == sealed.seen()
        calm = SeriesIndex(small_spec())
        fill(calm, values, LS)
        assert target.snapshot() == calm.snapshot()

    def test_spec_mismatch_is_rejected(self):
        left = SeriesIndex(small_spec())
        right = SeriesIndex(small_spec(series={"max_active": 5}))
        with pytest.raises(ValueError, match="specs differ"):
            left.merge_from(right)


class TestHistoryAttachment:
    def test_second_binder_is_rejected(self):
        index = SeriesIndex(small_spec())
        binder = lambda key: (lambda *args: None)  # noqa: E731
        index.attach_history(binder)
        with pytest.raises(ValueError, match="already records history"):
            index.attach_history(binder)

    def test_binder_called_once_per_materialised_series(self):
        bound = []
        index = SeriesIndex(small_spec())
        index.attach_history(lambda key: bound.append(key) or (lambda *a: None))
        fill(index, stream_values(0, 9), LS)
        assert sorted(bound) == index.series()


class TestReset:
    def test_reset_drops_series_but_keeps_schema(self):
        index = SeriesIndex(small_spec(series={"max_active": 1}))
        fill(index, stream_values(0, 30), LS)
        index.reset()
        assert index.active_count() == 0 and index.evicted_count() == 0
        assert index.series() == []
        index.observe(LS[0], 1.0)
        assert index.seen() == 1
