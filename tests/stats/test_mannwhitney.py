"""Mann–Whitney U test cross-checked against scipy."""

import random

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.stats import mann_whitney_u


class TestBasics:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])
        with pytest.raises(ValueError):
            mann_whitney_u([1.0], [])

    def test_invalid_alternative(self):
        with pytest.raises(ValueError):
            mann_whitney_u([1.0], [2.0], alternative="sideways")

    def test_identical_samples_not_significant(self):
        result = mann_whitney_u([5.0] * 10, [5.0] * 10)
        assert result.p_value == 1.0
        assert not result.rejects_at(0.05)

    def test_clearly_larger_sample(self):
        x = [100.0 + i for i in range(20)]
        y = [float(i) for i in range(20)]
        result = mann_whitney_u(x, y, alternative="greater")
        assert result.rejects_at(0.001)

    def test_clearly_smaller_sample(self):
        x = [float(i) for i in range(20)]
        y = [100.0 + i for i in range(20)]
        result = mann_whitney_u(x, y, alternative="greater")
        assert not result.rejects_at(0.05)
        assert mann_whitney_u(x, y, alternative="less").rejects_at(0.001)


class TestAgainstScipy:
    @pytest.mark.parametrize("alternative", ["two-sided", "greater", "less"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_u_and_p_match(self, alternative, seed):
        rng = random.Random(seed)
        x = [rng.gauss(0, 1) for _ in range(25)]
        y = [rng.gauss(0.5, 1) for _ in range(30)]
        ours = mann_whitney_u(x, y, alternative=alternative)
        scipy_alt = alternative.replace("-", "_") if alternative == "two-sided" else alternative
        theirs = scipy_stats.mannwhitneyu(
            x, y, alternative="two-sided" if alternative == "two-sided" else alternative,
            method="asymptotic",
        )
        assert ours.u_statistic == pytest.approx(theirs.statistic)
        assert ours.p_value == pytest.approx(theirs.pvalue, abs=1e-6)

    def test_with_ties(self):
        rng = random.Random(7)
        x = [float(rng.randrange(5)) for _ in range(30)]
        y = [float(rng.randrange(5)) for _ in range(25)]
        ours = mann_whitney_u(x, y, alternative="greater")
        theirs = scipy_stats.mannwhitneyu(x, y, alternative="greater", method="asymptotic")
        assert ours.u_statistic == pytest.approx(theirs.statistic)
        assert ours.p_value == pytest.approx(theirs.pvalue, abs=1e-6)


class TestFalsePositiveRate:
    def test_null_rejection_rate_near_alpha(self):
        rng = np.random.default_rng(11)
        rejections = 0
        trials = 600
        for _ in range(trials):
            x = rng.normal(0, 1, size=15)
            y = rng.normal(0, 1, size=15)
            if mann_whitney_u(x, y, alternative="greater").rejects_at(0.05):
                rejections += 1
        rate = rejections / trials
        assert 0.02 <= rate <= 0.09, f"null rejection rate {rate}"
