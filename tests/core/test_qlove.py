"""QLOVE policy behaviour: Level-2 accuracy, few-k repairs, space, config."""

import math

import numpy as np
import pytest

from repro.core import FewKConfig, QLOVEConfig, QLOVEPolicy
from repro.core.fewk import SOURCE_LEVEL2, SOURCE_SAMPLEK, SOURCE_TOPK
from repro.streaming import CountWindow

from tests.conftest import drive_policy, exact_quantile


def netmon_like(n, seed=0):
    """Heavy-tailed integer latencies resembling NetMon."""
    rng = np.random.default_rng(seed)
    body = rng.lognormal(mean=6.7, sigma=0.35, size=n)
    tail_mask = rng.random(n) < 0.005
    tail = rng.pareto(1.3, size=n) * 4000 + 3000
    return np.round(np.where(tail_mask, tail, body)).astype(float)


def mean_rel_error(results, slices, phi):
    errors = []
    for est, window_values in zip(results, slices):
        truth = exact_quantile(window_values, phi)
        errors.append(abs(est[phi] - truth) / truth)
    return float(np.mean(errors))


class TestLevel2Accuracy:
    def test_median_error_below_1pct(self):
        window = CountWindow(size=32000, period=4000)
        values = netmon_like(96000, seed=1)
        policy = QLOVEPolicy([0.5, 0.9], window)
        results, slices = drive_policy(policy, values, window)
        assert mean_rel_error(results, slices, 0.5) < 0.01
        assert mean_rel_error(results, slices, 0.9) < 0.01

    def test_normal_data_very_accurate(self):
        window = CountWindow(size=16000, period=2000)
        rng = np.random.default_rng(3)
        values = rng.normal(1e6, 5e4, size=48000)
        policy = QLOVEPolicy([0.5, 0.9, 0.99], window)
        results, slices = drive_policy(policy, values, window)
        for phi in [0.5, 0.9, 0.99]:
            assert mean_rel_error(results, slices, phi) < 0.005

    def test_high_quantile_degrades_with_small_period(self):
        # Table 2's statistical-inefficiency effect: Q0.999 error grows as
        # periods shrink while Q0.5 stays flat.
        values = netmon_like(64000, seed=4)
        errors = {}
        for period in (8000, 1000):
            window = CountWindow(size=16000, period=period)
            policy = QLOVEPolicy([0.5, 0.999], window)
            results, slices = drive_policy(policy, values, window)
            errors[period] = (
                mean_rel_error(results, slices, 0.5),
                mean_rel_error(results, slices, 0.999),
            )
        assert errors[1000][0] < 0.01  # median unaffected
        assert errors[1000][1] > errors[8000][1]  # tail degrades

    def test_tumbling_window(self):
        window = CountWindow.tumbling(8000)
        values = netmon_like(32000, seed=5)
        policy = QLOVEPolicy([0.5], window)
        results, slices = drive_policy(policy, values, window)
        # One sub-window per window -> Level 2 mean of one exact quantile;
        # only quantization error remains (< 1%).
        for est, window_values in zip(results, slices):
            truth = exact_quantile(window_values, 0.5)
            assert abs(est[0.5] - truth) / truth < 0.01


class TestFewKTopK:
    def test_topk_repairs_statistical_inefficiency(self):
        values = netmon_like(64000, seed=6)
        window = CountWindow(size=16000, period=1000)
        plain = QLOVEPolicy([0.999], window)
        repaired = QLOVEPolicy(
            [0.999], window, QLOVEConfig(fewk=FewKConfig(topk_fraction=0.5))
        )
        res_plain, slices = drive_policy(plain, values, window)
        res_rep, _ = drive_policy(repaired, values, window)
        err_plain = mean_rel_error(res_plain, slices, 0.999)
        err_rep = mean_rel_error(res_rep, slices, 0.999)
        assert err_rep < err_plain
        assert err_rep < 0.02

    def test_topk_full_fraction_is_exact_up_to_quantization(self):
        values = netmon_like(48000, seed=7)
        window = CountWindow(size=16000, period=2000)
        policy = QLOVEPolicy(
            [0.999],
            window,
            QLOVEConfig(fewk=FewKConfig(topk_fraction=1.0)),
        )
        results, slices = drive_policy(policy, values, window)
        for est, window_values in zip(results, slices):
            truth = exact_quantile(window_values, 0.999)
            assert abs(est[0.999] - truth) / truth < 0.01  # quantization only

    def test_auto_rule_triggers_below_ts(self):
        window = CountWindow(size=16000, period=1000)  # P(1-.999)=1 < 10
        config = QLOVEConfig(fewk=FewKConfig())
        policy = QLOVEPolicy([0.5, 0.999], window, config)
        assert 0.999 in policy._mergers
        assert policy._mergers[0.999].topk_enabled
        # Median is dense: P(1-.5)=500 >= 10, no merger needed.
        assert 0.5 not in policy._mergers

    def test_source_reporting(self):
        values = netmon_like(32000, seed=8)
        window = CountWindow(size=16000, period=1000)
        policy = QLOVEPolicy(
            [0.5, 0.999], window, QLOVEConfig(fewk=FewKConfig(topk_fraction=0.2))
        )
        drive_policy(policy, values, window)
        sources = policy.result_sources()
        assert sources[0.5] == SOURCE_LEVEL2
        assert sources[0.999] == SOURCE_TOPK


class TestFewKSampleK:
    @staticmethod
    def inject_burst(values, window, phi=0.999, factor=10.0):
        """Paper's Section 5.3 burst: scale the top N(1-phi) values of every
        (N/P)-th sub-window by ``factor``."""
        out = np.array(values, dtype=float)
        n_sub = window.subwindow_count
        period = window.period
        need = int(math.ceil(window.size * (1 - phi)))
        for start in range(0, len(out) - period + 1, period * n_sub):
            chunk = out[start : start + period]
            top_idx = np.argsort(chunk)[-need:]
            chunk[top_idx] *= factor
        return out

    def test_burst_damages_level2_and_samplek_repairs(self):
        window = CountWindow(size=16000, period=2000)
        base = netmon_like(64000, seed=9)
        values = self.inject_burst(base, window)
        plain = QLOVEPolicy([0.999], window)
        repaired = QLOVEPolicy(
            [0.999],
            window,
            QLOVEConfig(fewk=FewKConfig(samplek_fraction=0.5)),
        )
        res_plain, slices = drive_policy(plain, values, window)
        res_rep, _ = drive_policy(repaired, values, window)
        err_plain = mean_rel_error(res_plain, slices, 0.999)
        err_rep = mean_rel_error(res_rep, slices, 0.999)
        assert err_plain > 0.10  # burst blows up the Level-2 estimate
        assert err_rep < err_plain / 2

    def test_samplek_used_when_burst_detected(self):
        window = CountWindow(size=16000, period=2000)
        base = netmon_like(48000, seed=10)
        values = self.inject_burst(base, window)
        policy = QLOVEPolicy(
            [0.999],
            window,
            QLOVEConfig(fewk=FewKConfig(samplek_fraction=0.5)),
        )
        results, _ = drive_policy(policy, values, window)
        assert results  # ran
        merger = policy._mergers[0.999]
        assert merger.samplek_enabled
        assert policy.result_sources()[0.999] in (SOURCE_SAMPLEK, SOURCE_LEVEL2)

    def test_no_burst_no_samplek_override(self):
        window = CountWindow(size=16000, period=2000)
        values = netmon_like(48000, seed=11)
        policy = QLOVEPolicy(
            [0.9],
            window,
            QLOVEConfig(fewk=FewKConfig(samplek_fraction=0.3, burst_alpha=0.01)),
        )
        results, slices = drive_policy(policy, values, window)
        # Calm traffic: the estimate should stay the accurate Level-2 one.
        assert mean_rel_error(results, slices, 0.9) < 0.01


class TestSpace:
    def test_space_far_below_exact(self):
        window = CountWindow(size=32000, period=4000)
        values = netmon_like(64000, seed=12)
        policy = QLOVEPolicy([0.5, 0.9, 0.99, 0.999], window)
        drive_policy(policy, values, window)
        # Quantized heavy-tailed data: in-flight unique values are a small
        # fraction of the sub-window, summaries are l * n_sub.
        assert policy.peak_space_variables() < window.period
        assert policy.peak_space_variables() < 3 * window.size / 10

    def test_quantization_shrinks_space(self):
        window = CountWindow(size=16000, period=4000)
        values = netmon_like(32000, seed=13) + np.random.default_rng(0).random(32000)
        compressed = QLOVEPolicy([0.5], window, QLOVEConfig(quantize_digits=3))
        raw = QLOVEPolicy([0.5], window, QLOVEConfig(quantize_digits=None))
        drive_policy(compressed, values, window)
        drive_policy(raw, values, window)
        assert compressed.peak_space_variables() < raw.peak_space_variables() / 5

    def test_analytical_space(self):
        window = CountWindow(size=128000, period=16000)
        bound = QLOVEPolicy.analytical_space(window, num_phis=4)
        assert bound == 4 * 8 + 2 * 16000


class TestConfigValidation:
    def test_bad_backend(self):
        with pytest.raises(ValueError):
            QLOVEConfig(backend="btree")

    def test_bad_digits(self):
        with pytest.raises(ValueError):
            QLOVEConfig(quantize_digits=0)

    def test_bad_fractions(self):
        with pytest.raises(ValueError):
            FewKConfig(topk_fraction=1.5)
        with pytest.raises(ValueError):
            FewKConfig(samplek_fraction=-0.1)
        with pytest.raises(ValueError):
            FewKConfig(burst_alpha=0.0)

    def test_with_fewk_helper(self):
        config = QLOVEConfig.with_fewk(topk_fraction=0.1)
        assert config.fewk is not None
        assert config.fewk.topk_fraction == 0.1

    def test_tree_backend_equivalent(self):
        window = CountWindow(size=8000, period=2000)
        values = netmon_like(16000, seed=14)
        res_dict, _ = drive_policy(
            QLOVEPolicy([0.5, 0.99], window, QLOVEConfig(backend="dict")), values, window
        )
        res_tree, _ = drive_policy(
            QLOVEPolicy([0.5, 0.99], window, QLOVEConfig(backend="tree")), values, window
        )
        assert res_dict == res_tree

    def test_query_before_seal_raises(self):
        policy = QLOVEPolicy([0.5], CountWindow(100, 10))
        with pytest.raises(ValueError):
            policy.query()

    def test_expire_without_seal_raises(self):
        with pytest.raises(RuntimeError):
            QLOVEPolicy([0.5], CountWindow(100, 10)).expire_subwindow()
