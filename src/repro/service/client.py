"""Clients for the telemetry serving protocol.

Two layers:

- :class:`TelemetryClient` — one connection, synchronous
  request/response.  It speaks the newline-delimited JSON protocol by
  default and can negotiate the length-prefixed binary framing
  (``protocol="binary"`` or an explicit :meth:`~TelemetryClient.hello`),
  after which observe blocks travel as raw float64 payloads.  Every
  call returns the decoded payload or raises :class:`ServerError` with
  the server's one-line error.
- :class:`LoadGenerator` — a deterministic, seeded, multi-connection
  driver: it generates a registered workload (the exact array
  ``workloads.get_dataset`` yields for the same seed), slices it into
  fixed blocks, and fans block *i* to connection ``i % connections``
  with a global per-metric sequence number.  The partitioning is a pure
  function of ``(dataset, events, seed, block_size)`` — **not** of the
  connection count — so the event sequence is byte-identical across
  runs and across connection counts, and the server's seq-reordering
  consumer applies the exact offline stream order.  Served snapshots
  are therefore bit-identical to an offline Monitor run.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.service import binary
from repro.service.protocol import ConnectionClosed, recv_message, send_message
from repro.streaming.engine import WindowResult

#: Wire protocols a :class:`TelemetryClient` can speak.
CLIENT_PROTOCOLS = ("json", "binary")


class ServerError(RuntimeError):
    """The server answered ``ok: false``; the message is its error line."""


class TelemetryClient:
    """One synchronous connection to a :class:`TelemetryServer`.

    Usable as a context manager; every request method blocks until the
    server's response arrives (which is how ingest backpressure reaches
    the sender: a full ``"block"``-mode queue withholds the ack).

    ``protocol="binary"`` negotiates the length-prefixed binary framing
    at connect time (a ``hello`` handshake); the default keeps the
    human-readable JSON wire.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 60.0,
        protocol: str = "json",
    ) -> None:
        if protocol not in CLIENT_PROTOCOLS:
            raise ValueError(
                f"unknown protocol {protocol!r}; choose from {CLIENT_PROTOCOLS}"
            )
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._stream = self._sock.makefile("rb")
        self._protocol = "json"
        if protocol == "binary":
            try:
                self.hello("binary")
            except BaseException:
                self.close()
                raise

    @property
    def protocol(self) -> str:
        """The connection's negotiated wire protocol."""
        return self._protocol

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def request(self, message: dict) -> dict:
        """Send one request and return the decoded success payload."""
        if self._protocol == "json":
            send_message(self._sock, message)
            response = recv_message(self._stream)
        else:
            self._sock.sendall(binary.encode_request(message))
            frame = binary.recv_frame(self._stream)
            response = None if frame is None else binary.decode_response(*frame)
        if response is None:
            raise ConnectionClosed(
                "server closed the connection before responding"
            )
        if not response.get("ok"):
            raise ServerError(response.get("error", "unspecified server error"))
        return response

    def hello(self, protocol: str, version: int = binary.BINARY_VERSION) -> dict:
        """Negotiate the connection's wire protocol.

        The request (and its response) travel on the current framing;
        on success every subsequent frame uses the negotiated one.  A
        rejected negotiation raises :class:`ServerError` and leaves the
        connection's protocol unchanged.
        """
        response = self.request(
            {"op": "hello", "protocol": protocol, "version": version}
        )
        self._protocol = protocol
        return response

    def close(self) -> None:
        try:
            self._stream.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "TelemetryClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Ingest + control ops
    # ------------------------------------------------------------------
    def ping(self) -> List[str]:
        """Liveness probe; returns the server's registered metric names."""
        return list(self.request({"op": "ping"})["metrics"])

    def ping_info(self) -> dict:
        """The full ping payload: ``metrics`` plus ``labels`` (the label
        schema of every labeled metric, ``{name: [label, ...]}``)."""
        response = self.request({"op": "ping"})
        return {
            "metrics": list(response["metrics"]),
            "labels": {
                name: list(schema)
                for name, schema in response.get("labels", {}).items()
            },
        }

    def observe(
        self,
        metric: str,
        values: Sequence[float],
        seq: Optional[int] = None,
        labels: Optional[Dict[str, str]] = None,
    ) -> dict:
        """Send one block; returns the ack (``accepted`` may be False
        when the server sheds under overload).

        A plain list passes through unconverted, so senders fanning one
        block to several metrics can ``tolist()`` once and reuse it.
        On the binary protocol arrays are never listified — they ship as
        raw float64 bytes.  ``labels`` routes the block to one series of
        a labeled metric (required for those; the ``seq`` space is then
        per-series).
        """
        if self._protocol == "binary" or isinstance(values, list):
            payload = values
        else:
            payload = np.asarray(values, dtype=np.float64).tolist()
        message = {"op": "observe", "metric": metric, "values": payload}
        if seq is not None:
            message["seq"] = int(seq)
        if labels is not None:
            message["labels"] = dict(labels)
        return self.request(message)

    def flush(self) -> dict:
        """Wait (server-side) until every acked block is applied."""
        return self.request({"op": "flush"})

    def snapshot(self) -> Dict[str, object]:
        """Latest per-metric estimates, exactly as ``Monitor.snapshot``.

        Labeled metrics come back nested (``{series_key: {phi: estimate}
        | None}``), mirroring the monitor's shape.
        """
        response = self.request({"op": "snapshot"})
        labeled = set(response.get("labeled", []))

        def native(estimates):
            if estimates is None:
                return None
            return {float(phi): value for phi, value in estimates.items()}

        return {
            name: (
                {key: native(latest) for key, latest in entry.items()}
                if name in labeled
                else native(entry)
            )
            for name, entry in response["snapshot"].items()
        }

    def group_by(
        self,
        metric: str,
        by: Sequence[str],
        quantiles: Optional[Sequence[float]] = None,
    ) -> dict:
        """A live group-by over a labeled metric's current window.

        Returns the same result dict
        :func:`repro.series.groupby.group_by_live` produces locally, so
        server and CLI answers render to identical bytes.
        """
        message: dict = {
            "op": "group_by",
            "metric": metric,
            "by": by if isinstance(by, str) else list(by),
        }
        if quantiles is not None:
            message["quantiles"] = [float(phi) for phi in quantiles]
        return self.request(message)["result"]

    def results(
        self, metric: str, labels: Optional[Dict[str, str]] = None
    ) -> List[WindowResult]:
        """Every emitted evaluation, as ``Monitor.results`` returns them.

        For labeled metrics, ``labels`` picks the series to read.
        """
        message: dict = {"op": "results", "metric": metric}
        if labels is not None:
            message["labels"] = dict(labels)
        raw = self.request(message)["results"]
        return [
            WindowResult(
                index=entry["index"],
                window_count=entry["window_count"],
                end=entry["end"],
                result={
                    float(phi): value for phi, value in entry["result"].items()
                },
            )
            for entry in raw
        ]

    def stats(self) -> dict:
        """Server accounting: per-metric reports, queue, pipeline, checkpoint."""
        return self.request({"op": "stats"})

    def seen(self) -> Dict[str, int]:
        """Per-metric ingested-element counts (the resume offsets)."""
        stats = self.request({"op": "stats"})
        return {
            name: int(report["seen"]) for name, report in stats["metrics"].items()
        }

    def checkpoint(self) -> dict:
        """Force a drain + checkpoint save now."""
        return self.request({"op": "checkpoint"})

    def pull_state(self) -> dict:
        """The server monitor's full serialized state (drained first).

        ``Monitor.from_state`` rebuilds an identical monitor from it; on
        the binary protocol the state arrives as one opaque ``OP_STATE``
        frame instead of inline JSON.
        """
        return self.request({"op": "state"})["state"]

    def push_merge(self, state: dict) -> dict:
        """Ship a serialized monitor state for the server to fold in.

        The push side of checkpoint shipping: merging per-shard monitors
        at period boundaries reproduces the unsplit stream bit-for-bit.
        """
        return self.request({"op": "merge", "state": state})

    def history(
        self,
        metric: str,
        *,
        at: Optional[int] = None,
        start: Optional[int] = None,
        end: Optional[int] = None,
        step: Optional[int] = None,
        quantiles: Optional[Sequence[float]] = None,
    ) -> dict:
        """A historical quantile query over the server's segment store.

        Pass either ``at`` (one period) or ``start``+``end`` (a period
        range, optionally bucketed by ``step``).  Returns the same result
        dict :func:`repro.store.query.query_range` (or ``query_at`` /
        ``query_series``) produces locally, so server and CLI answers
        render to identical bytes.
        """
        message: dict = {"op": "history", "metric": metric}
        if at is not None:
            message["at"] = int(at)
        if start is not None:
            message["start"] = int(start)
        if end is not None:
            message["end"] = int(end)
        if step is not None:
            message["step"] = int(step)
        if quantiles is not None:
            message["quantiles"] = [float(phi) for phi in quantiles]
        return self.request(message)["result"]

    def shutdown(self) -> dict:
        """Ask the server to stop (it drains and saves before exiting)."""
        return self.request({"op": "shutdown"})


def wait_for_server(
    host: str, port: int, timeout: float = 15.0, interval: float = 0.1
) -> TelemetryClient:
    """Poll until a server answers ``ping`` on ``host:port``.

    Returns a connected client; raises ``ConnectionError`` after
    ``timeout`` seconds with the last underlying failure.
    """
    deadline = time.monotonic() + timeout
    last: Optional[Exception] = None
    while time.monotonic() < deadline:
        client = None
        try:
            client = TelemetryClient(host, port, timeout=timeout)
            client.ping()
            return client
        except (OSError, ServerError) as exc:
            if client is not None:  # connected but ping failed: no fd leak
                client.close()
            last = exc
            time.sleep(interval)
    raise ConnectionError(
        f"no telemetry server answered on {host}:{port} within {timeout:.0f}s "
        f"(last error: {last})"
    )


@dataclass(frozen=True)
class BlockAssignment:
    """One planned send: dataset slice ``[start, stop)`` as block ``seq``
    of every metric, carried by connection ``connection``."""

    seq: int
    start: int
    stop: int
    connection: int


class LoadGenerator:
    """Deterministic multi-connection load for a telemetry server.

    Parameters
    ----------
    host, port:
        The server to drive.
    dataset, events, seed:
        The workload (any :func:`~repro.workloads.registry.get_dataset`
        name); the generated array is identical to the offline CLI's for
        the same arguments.
    connections:
        Concurrent sender connections.  Changing this re-routes blocks
        but never changes the event sequence, the block boundaries, or
        the per-metric sequence numbers — reproducibility is structural.
    block_size:
        Events per ``observe`` message.  Matches the offline monitor
        CLI's ``--chunk-size`` for bit-identical comparisons.
    metrics:
        Metric names to fan the stream into; ``None`` asks the server
        (every registered metric, the offline CLI's fan-out).
    series, label_fanout:
        The labeled-metric discipline: event ``i`` of the stream belongs
        to series ``i % series``, whose labelset is
        :func:`~repro.series.labels.deterministic_labelsets` entry ``i %
        series`` (first schema label cycling through ``label_fanout``
        values).  A pure function of ``(dataset, events, seed)`` — the
        connection count and block size never change which event lands
        in which series, so served labeled runs replay offline
        byte-identically.
    protocol:
        The wire protocol the sender connections speak: ``"json"``
        (default), ``"binary"``, or ``"mixed"`` — connection ``i`` uses
        JSON when ``i`` is even and binary when odd, exercising a fleet
        of heterogeneous clients against one server.  Like the
        connection count, the protocol never changes the event
        sequence, block boundaries, or sequence numbers.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        dataset: str = "netmon",
        events: int = 200_000,
        seed: int = 0,
        connections: int = 1,
        block_size: int = 65_536,
        metrics: Optional[Sequence[str]] = None,
        series: int = 8,
        label_fanout: int = 4,
        protocol: str = "json",
    ) -> None:
        if protocol not in (*CLIENT_PROTOCOLS, "mixed"):
            raise ValueError(
                f"unknown protocol {protocol!r}; choose from "
                f"{(*CLIENT_PROTOCOLS, 'mixed')}"
            )
        if connections < 1:
            raise ValueError(f"connections must be >= 1, got {connections}")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if events < 0:
            raise ValueError(f"events must be >= 0, got {events}")
        if series < 1:
            raise ValueError(f"series must be >= 1, got {series}")
        if label_fanout < 1:
            raise ValueError(f"label_fanout must be >= 1, got {label_fanout}")
        self.host = host
        self.port = port
        self.dataset = dataset
        self.events = events
        self.seed = seed
        self.connections = connections
        self.block_size = block_size
        self.series = series
        self.label_fanout = label_fanout
        self.protocol = protocol
        self._metrics = list(metrics) if metrics is not None else None

    def connection_protocol(self, index: int) -> str:
        """The wire protocol sender connection ``index`` speaks."""
        if self.protocol == "mixed":
            return "json" if index % 2 == 0 else "binary"
        return self.protocol

    # ------------------------------------------------------------------
    # The deterministic plan
    # ------------------------------------------------------------------
    def event_sequence(self) -> np.ndarray:
        """The full seeded event array — independent of connection count."""
        from repro.workloads.registry import get_dataset

        return get_dataset(self.dataset, self.events, seed=self.seed)

    def plan(self, start_offset: int = 0, stop_after: Optional[int] = None) -> List[BlockAssignment]:
        """Block assignments for the slice ``[start_offset, stop_after)``.

        Blocks are numbered from 0 within the slice and routed
        round-robin (block ``i`` → connection ``i % connections``); each
        carries its seq to the server, whose reorder buffer restores the
        exact global order however the connections interleave.
        """
        stop = self.events if stop_after is None else min(stop_after, self.events)
        if start_offset < 0 or start_offset > stop:
            raise ValueError(
                f"start_offset {start_offset} outside [0, {stop}] "
                f"(events={self.events}, stop_after={stop_after})"
            )
        assignments = []
        for seq, start in enumerate(range(start_offset, stop, self.block_size)):
            assignments.append(
                BlockAssignment(
                    seq=seq,
                    start=start,
                    stop=min(start + self.block_size, stop),
                    connection=seq % self.connections,
                )
            )
        return assignments

    # ------------------------------------------------------------------
    # Driving the server
    # ------------------------------------------------------------------
    def resolve_metrics(self) -> List[str]:
        """The metric fan-out (asks the server when not pinned)."""
        if self._metrics is not None:
            return list(self._metrics)
        with TelemetryClient(self.host, self.port) as client:
            return client.ping()

    def labelsets_for(self, schema: Sequence[str]) -> List[Dict[str, str]]:
        """The deterministic labelsets this generator routes events to —
        entry ``j`` receives every event ``i`` with ``i % series == j``."""
        from repro.series.labels import deterministic_labelsets

        return [
            dict(items)
            for items in deterministic_labelsets(
                schema, self.series, self.label_fanout
            )
        ]

    def _seq_base(self, metrics: Sequence[str]) -> int:
        """Where the server's per-metric seq numbering currently stands.

        The server's seq cursor is per-process and monotonic; a sender
        that numbered a fresh run from 0 against a server that already
        consumed seqs would have every block silently dropped as a
        replay.  Requires the fan-out metrics to agree (they do under
        this generator's uniform discipline).
        """
        with TelemetryClient(self.host, self.port) as client:
            reports = client.stats()["metrics"]
        bases = {name: int(reports[name].get("next_seq", 0)) for name in metrics}
        if len(set(bases.values())) > 1:
            raise ValueError(
                f"metrics disagree on the server's sequence position "
                f"({bases}); this server state was not produced by the "
                "load generator's uniform fan-out"
            )
        return next(iter(bases.values())) if bases else 0

    def run(
        self, start_offset: int = 0, stop_after: Optional[int] = None
    ) -> Dict[str, object]:
        """Stream the planned blocks over ``connections`` sockets.

        Every block goes to every metric (the offline CLI's uniform
        fan-out), tagged with its per-metric seq — continuing from the
        server's current sequence position, so repeated runs against one
        live server keep applying (never replay-dropped).  Returns a
        summary: events/blocks sent, sheds reported by the server,
        elapsed time.
        """
        metrics = self.resolve_metrics()
        if not metrics:
            raise ValueError("server has no registered metrics to feed")
        with TelemetryClient(self.host, self.port) as client:
            schemas = client.ping_info()["labels"]
        labelsets = {
            name: self.labelsets_for(schema)
            for name, schema in schemas.items()
            if name in metrics
        }
        seq_base = self._seq_base(metrics)
        values = self.event_sequence()
        assignments = self.plan(start_offset=start_offset, stop_after=stop_after)
        per_connection: List[List[BlockAssignment]] = [
            [] for _ in range(self.connections)
        ]
        for assignment in assignments:
            per_connection[assignment.connection].append(assignment)

        shed_blocks = [0] * self.connections
        sent_events = [0] * self.connections
        errors: List[Exception] = []
        lock = threading.Lock()
        from repro.series.labels import series_slice

        def sender(index: int, mine: List[BlockAssignment]) -> None:
            try:
                proto = self.connection_protocol(index)
                with TelemetryClient(self.host, self.port, protocol=proto) as client:
                    text_wire = client.protocol == "json"
                    for assignment in mine:
                        block = values[assignment.start : assignment.stop]
                        # JSON serialises once per block; the binary wire
                        # ships the array's bytes without listifying.
                        payload = block.tolist() if text_wire else block
                        for metric in metrics:
                            if metric in labelsets:
                                # Per-series strided sub-blocks, one per
                                # labelset; empty ones still go out so
                                # every series' seq space stays gap-free.
                                for j, labels in enumerate(labelsets[metric]):
                                    sub = series_slice(
                                        block, assignment.start, self.series, j
                                    )
                                    ack = client.observe(
                                        metric,
                                        sub.tolist() if text_wire else sub,
                                        seq=seq_base + assignment.seq,
                                        labels=labels,
                                    )
                                    if not ack.get("accepted", False):
                                        shed_blocks[index] += 1
                                continue
                            ack = client.observe(
                                metric, payload, seq=seq_base + assignment.seq
                            )
                            if not ack.get("accepted", False):
                                shed_blocks[index] += 1
                        sent_events[index] += len(block)
            except Exception as exc:
                with lock:
                    errors.append(exc)

        started = time.perf_counter()
        threads = [
            threading.Thread(target=sender, args=(i, mine), daemon=True)
            for i, mine in enumerate(per_connection)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        with TelemetryClient(self.host, self.port) as client:
            flush = client.flush()
        elapsed = time.perf_counter() - started
        return {
            "metrics": metrics,
            "connections": self.connections,
            "protocol": self.protocol,
            "blocks": len(assignments),
            "events": int(sum(sent_events)),
            "shed_blocks": int(sum(shed_blocks)),
            "drained": bool(flush.get("drained", False)),
            "elapsed": elapsed,
        }

    def resume_offset(self) -> int:
        """The uniform per-metric ``seen`` count on the server.

        This is where a resumed run continues from after a crash
        recovery (the server restarted from its checkpoint).  Raises
        when metrics disagree — such a state was not produced by this
        generator's uniform fan-out.
        """
        with TelemetryClient(self.host, self.port) as client:
            seen = client.seen()
        counts = set(seen.values())
        if len(counts) > 1:
            raise ValueError(
                f"metrics saw different element counts ({seen}); this server "
                "state was not produced by the load generator's uniform "
                "fan-out and cannot be resumed here"
            )
        return counts.pop() if counts else 0


__all__ = [
    "BlockAssignment",
    "LoadGenerator",
    "ServerError",
    "TelemetryClient",
    "wait_for_server",
]
