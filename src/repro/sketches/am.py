"""AM — Arasu & Manku 2004 sliding-window quantiles via dyadic blocks.

AM improves CMQS's space by arranging summaries hierarchically: level-l
blocks cover 2^l consecutive sub-windows, and any window suffix is covered
by O(log n) canonically aligned blocks instead of n per-sub-window
sketches.  We reproduce that structure over period-aligned sub-windows:

- level 0: one GK summary per sub-window (error ``eps_c``);
- level l: lazily built and memoised by merging the two aligned level-(l-1)
  children (weighted reinsertion into a fresh GK summary);
- a query covers the live sub-window range greedily with the largest
  aligned blocks and combines their weighted items.

With the per-level construction error ``eps_c = eps / (2 (L + 1))`` the
composed rank error of an L-level block stays below ``eps/2 * n`` and the
total query error below ``eps * N``, preserving AM's deterministic
guarantee (constants differ from the original paper; see DESIGN.md).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro import serde
from repro.sketches.base import QuantilePolicy
from repro.sketches.cmqs import subwindow_capacity
from repro.sketches.gk import GKSummary, combined_quantile, merge_summaries
from repro.streaming.windows import CountWindow


class AMPolicy(QuantilePolicy):
    """Dyadic hierarchy of GK summaries over sub-windows."""

    name = "am"

    def __init__(
        self,
        phis: Sequence[float],
        window: CountWindow,
        epsilon: float = 0.02,
    ) -> None:
        super().__init__(phis, window)
        if not 0.0 < epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = epsilon
        n_sub = window.subwindow_count
        self._levels = max(0, int(math.floor(math.log2(n_sub)))) if n_sub > 1 else 0
        self._eps_c = epsilon / (2.0 * (self._levels + 1))
        self._capacity = subwindow_capacity(epsilon, window.period)
        self._in_flight = GKSummary(self._eps_c, capacity=self._capacity)
        # (level, start_subwindow_index) -> summary; level-0 entries are the
        # sealed sub-window sketches, higher levels are memoised merges.
        self._blocks: Dict[Tuple[int, int], GKSummary] = {}
        self._blocks_space = 0
        self._next_index = 0  # index the in-flight sub-window will receive
        self._oldest = 0  # oldest live sub-window index

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def accumulate(self, value: float) -> None:
        self._in_flight.insert(value)

    def seal_subwindow(self) -> None:
        self.record_space()
        self._blocks[(0, self._next_index)] = self._in_flight
        self._blocks_space += self._in_flight.space_variables()
        self._in_flight = GKSummary(self._eps_c, capacity=self._capacity)
        self._next_index += 1

    def expire_subwindow(self) -> None:
        if self._oldest >= self._next_index:
            raise RuntimeError("expire_subwindow() with no sealed sub-window")
        self._oldest += 1
        # Evict every block that now sticks out of the window on the left.
        stale = [
            key for key in self._blocks if key[1] < self._oldest
        ]
        for key in stale:
            self._blocks_space -= self._blocks[key].space_variables()
            del self._blocks[key]

    # ------------------------------------------------------------------
    # Mergeability
    # ------------------------------------------------------------------
    def merge(self, other: "AMPolicy") -> None:
        """Fold another AM policy's state into this one.

        The donor's live level-0 blocks are appended after this policy's
        newest sub-window (re-indexed, oldest first); its memoised
        higher-level blocks are dropped — the dyadic cover rebuilds them
        lazily over the new index range.  The in-flight summary absorbs
        the donor's weighted items.
        """
        self._require_compatible(other)
        if other.epsilon != self.epsilon:
            raise ValueError("merge requires the same epsilon")
        for idx in range(other._oldest, other._next_index):
            block = other._blocks[(0, idx)]
            self._blocks[(0, self._next_index)] = block
            self._blocks_space += block.space_variables()
            self._next_index += 1
        if other._in_flight.n:
            for value, weight in other._in_flight.weighted_items():
                self._in_flight.insert(value, weight)

    def reset(self) -> None:
        self._in_flight = GKSummary(self._eps_c, capacity=self._capacity)
        self._blocks = {}
        self._blocks_space = 0
        self._next_index = 0
        self._oldest = 0
        self._peak_space = 0

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Every live block (including memoised merges) plus the indices.

        Memoised higher-level blocks are persisted too: they are
        deterministic functions of the level-0 blocks, but dropping them
        would change ``space_variables()`` after a restore, breaking
        bit-identical space accounting.
        """
        state = self._state_header()
        state["epsilon"] = float(self.epsilon)
        state["in_flight"] = self._in_flight.to_state()
        state["blocks"] = [
            [int(level), int(start), block.to_state()]
            for (level, start), block in sorted(self._blocks.items())
        ]
        state["next_index"] = int(self._next_index)
        state["oldest"] = int(self._oldest)
        return state

    @classmethod
    def from_state(cls, state: dict) -> "AMPolicy":
        phis, window = cls._check_policy_state(state)
        serde.require_fields(
            state,
            ("epsilon", "in_flight", "blocks", "next_index", "oldest"),
            "am policy",
        )
        policy = cls(phis, window, epsilon=float(state["epsilon"]))
        policy._in_flight = GKSummary.from_state(state["in_flight"])
        policy._blocks = {
            (int(level), int(start)): GKSummary.from_state(entry)
            for level, start, entry in state["blocks"]
        }
        policy._blocks_space = sum(
            block.space_variables() for block in policy._blocks.values()
        )
        policy._next_index = int(state["next_index"])
        policy._oldest = int(state["oldest"])
        policy._restore_header(state)
        return policy

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _block(self, level: int, start: int) -> GKSummary:
        """Fetch or lazily build the aligned block (level, start)."""
        key = (level, start)
        cached = self._blocks.get(key)
        if cached is not None:
            return cached
        if level == 0:
            raise KeyError(f"missing level-0 block at {start}")
        half = 1 << (level - 1)
        left = self._block(level - 1, start)
        right = self._block(level - 1, start + half)
        built = merge_summaries([left, right], self._eps_c, capacity=self._capacity)
        self._blocks[key] = built
        self._blocks_space += built.space_variables()
        return built

    def _cover(self) -> List[GKSummary]:
        """Cover [oldest, next_index) with maximal canonically aligned blocks."""
        cover: List[GKSummary] = []
        pos = self._oldest
        end = self._next_index
        while pos < end:
            level = self._levels
            while level > 0 and (pos % (1 << level) != 0 or pos + (1 << level) > end):
                level -= 1
            cover.append(self._block(level, pos))
            pos += 1 << level
        return cover

    def query(self) -> Dict[float, float]:
        if self._next_index == self._oldest:
            raise ValueError("query() before any sealed sub-window")
        values = combined_quantile(self._cover(), self.phis)
        return dict(zip(self.phis, values))

    # ------------------------------------------------------------------
    # Space
    # ------------------------------------------------------------------
    def space_variables(self) -> int:
        return self._blocks_space + self._in_flight.space_variables()

    @classmethod
    def analytical_space(
        cls, window: CountWindow, epsilon: float = 0.02, **params: float
    ) -> Optional[int]:
        """Level-0 sketches plus one extra level's worth of cached merges.

        Each of the L+1 levels can hold blocks totalling the level-0
        footprint, but only the levels the dyadic cover touches are ever
        materialised; in steady state that is level 0 plus roughly one
        cached upper level per power of two — the paper's Table 1 likewise
        shows AM costing ~1.35x CMQS.
        """
        n_sub = window.subwindow_count
        levels = max(0, int(math.floor(math.log2(n_sub)))) if n_sub > 1 else 0
        per_subwindow = subwindow_capacity(epsilon, window.period)
        level0 = 3 * per_subwindow * n_sub
        cached = 3 * per_subwindow * max(0, levels - 1)
        return level0 + cached * (n_sub // 4)
