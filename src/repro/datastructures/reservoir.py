"""Uniform reservoir sampling (Vitter's Algorithm R).

Used by the Random baseline (Luo et al. [21]) to keep a bounded uniform
sample of a sub-window, and available as a general substrate utility.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional

from repro import serde

#: State-format version written by :meth:`ReservoirSampler.to_state`.
RESERVOIR_STATE_VERSION = 1


class ReservoirSampler:
    """Keep a uniform sample of at most ``capacity`` values from a stream.

    Each offered value ends up in the reservoir with probability
    ``capacity / seen`` after ``seen`` offers, independent of arrival order.
    A seeded :class:`random.Random` can be injected for reproducibility.
    """

    __slots__ = ("_capacity", "_sample", "_seen", "_rng")

    def __init__(
        self,
        capacity: int,
        values: Iterable[float] = (),
        rng: Optional[random.Random] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._sample: List[float] = []
        self._seen = 0
        self._rng = rng if rng is not None else random.Random()
        for value in values:
            self.offer(value)

    @property
    def capacity(self) -> int:
        """Maximum number of retained values."""
        return self._capacity

    @property
    def seen(self) -> int:
        """Number of values offered so far."""
        return self._seen

    def __len__(self) -> int:
        return len(self._sample)

    def offer(self, value: float) -> None:
        """Offer one value to the reservoir."""
        self._seen += 1
        if len(self._sample) < self._capacity:
            self._sample.append(value)
            return
        slot = self._rng.randrange(self._seen)
        if slot < self._capacity:
            self._sample[slot] = value

    def offer_batch(self, values: Iterable[float]) -> None:
        """Offer every value of a batch.

        Kept as a tight sequential loop on purpose: Algorithm R draws one
        random number per offer, and reproducing the per-element sample
        distribution (and, under a seeded RNG, the exact sample) requires
        consuming the RNG in the same order.
        """
        if hasattr(values, "tolist"):  # numpy array -> plain floats
            values = values.tolist()
        offer = self.offer
        for value in values:
            offer(value)

    def values(self) -> List[float]:
        """Copy of the current sample (unordered)."""
        return list(self._sample)

    def clear(self) -> None:
        """Reset the reservoir and the seen counter."""
        self._sample = []
        self._seen = 0

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Versioned, JSON-safe snapshot (sample, counters, RNG position)."""
        state = serde.header("reservoir", RESERVOIR_STATE_VERSION)
        state["capacity"] = int(self._capacity)
        state["seen"] = int(self._seen)
        state["sample"] = serde.float_list(self._sample)
        state["rng"] = serde.rng_to_state(self._rng)
        return state

    @classmethod
    def from_state(cls, state: dict) -> "ReservoirSampler":
        """Rebuild a sampler whose future offers behave identically."""
        serde.check_state(state, "reservoir", RESERVOIR_STATE_VERSION, "reservoir")
        serde.require_fields(
            state, ("capacity", "seen", "sample", "rng"), "reservoir"
        )
        sampler = cls(int(state["capacity"]))
        sampler._sample = serde.float_list(state["sample"])
        sampler._seen = int(state["seen"])
        sampler._rng = serde.rng_from_state(state["rng"], "reservoir")
        return sampler
