"""Table 2: value error without few-k merging vs period size.

128K window; periods swept 64K down to 1K.  The paper's shape: Q0.5/Q0.9
flat and tiny; Q0.99 and especially Q0.999 inflating as periods shrink
(statistical inefficiency, Section 3.3).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.evalkit.experiments.common import (
    PAPER_WINDOW,
    QMONITOR_PHIS,
    ExperimentResult,
    describe_scale,
    percent,
    scaled,
    stream_length,
)
from repro.evalkit.reporting import Table
from repro.evalkit.runner import run_accuracy
from repro.streaming.windows import CountWindow
from repro.workloads import generate_netmon

PAPER_PERIODS = (65_536, 32_768, 16_384, 8_192, 4_096, 2_048, 1_024)


def run(
    scale: float = 1.0,
    seed: int = 0,
    evaluations: int = 16,
    periods: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Regenerate Table 2."""
    window_size = scaled(PAPER_WINDOW, scale)
    period_list = [scaled(p, scale) for p in (periods or PAPER_PERIODS)]
    table = Table(
        f"Table 2: average relative value error (%) without few-k, "
        f"window={window_size}",
        ["Quantile"] + [f"{p}" for p in period_list],
    )
    data: Dict[float, Dict[int, float]] = {phi: {} for phi in QMONITOR_PHIS}
    reports = {}
    for period in period_list:
        n_sub = max(1, window_size // period)
        window = CountWindow(size=n_sub * period, period=period)
        values = generate_netmon(stream_length(window, evaluations), seed=seed)
        reports[period] = run_accuracy("qlove", values, window, QMONITOR_PHIS)
    for phi in QMONITOR_PHIS:
        cells = []
        for period in period_list:
            error = reports[period].errors.mean_value_error(phi)
            data[phi][period] = error
            cells.append(percent(error))
        table.add_row(f"{phi}", *cells)

    return ExperimentResult(
        name="table2", tables=[table], data=data, notes=describe_scale(scale)
    )
