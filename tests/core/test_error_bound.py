"""Theorem 1: CLT error bound evaluation and empirical coverage."""

import math

import numpy as np
import pytest

from repro.core import clt_error_bound, density_at_quantile, error_bound_from_data
from repro.core.level2 import Level2Aggregator
from repro.core.summary import SubWindowSummary


class TestCltErrorBound:
    def test_formula(self):
        # alpha=5% -> z = 1.96; eb = 2 * 1.96 * sqrt(phi(1-phi)) / (sqrt(nm) f).
        eb = clt_error_bound(0.5, n_subwindows=10, subwindow_size=1000, density=0.01)
        expected = 2 * 1.959964 * 0.5 / (math.sqrt(10_000) * 0.01)
        assert eb == pytest.approx(expected, rel=1e-4)

    def test_tighter_with_more_data(self):
        a = clt_error_bound(0.5, 10, 1000, density=0.01)
        b = clt_error_bound(0.5, 10, 100000, density=0.01)
        assert b < a

    def test_wider_in_sparse_tail(self):
        # Same shape, lower density at the tail -> wider bound, the paper's
        # core observation about high quantiles.
        dense = clt_error_bound(0.5, 10, 1000, density=0.01)
        sparse = clt_error_bound(0.999, 10, 1000, density=0.00001)
        assert sparse > dense

    def test_validation(self):
        with pytest.raises(ValueError):
            clt_error_bound(0.0, 10, 10, 0.1)
        with pytest.raises(ValueError):
            clt_error_bound(0.5, 0, 10, 0.1)
        with pytest.raises(ValueError):
            clt_error_bound(0.5, 10, 10, 0.0)
        with pytest.raises(ValueError):
            clt_error_bound(0.5, 10, 10, 0.1, alpha=1.5)


class TestDensityEstimate:
    def test_uniform_density(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0.0, 100.0, size=200_000)
        # True density = 1/100 everywhere.
        assert density_at_quantile(values, 0.5) == pytest.approx(0.01, rel=0.1)

    def test_normal_density_at_median(self):
        rng = np.random.default_rng(1)
        sigma = 50.0
        values = rng.normal(0.0, sigma, size=200_000)
        truth = 1.0 / (sigma * math.sqrt(2 * math.pi))
        assert density_at_quantile(values, 0.5) == pytest.approx(truth, rel=0.1)

    def test_duplicate_heavy_widens_bandwidth(self):
        values = np.repeat([1.0, 2.0, 3.0], 1000).astype(float)
        d = density_at_quantile(values, 0.5)
        assert d > 0

    def test_constant_raises(self):
        with pytest.raises(ValueError):
            density_at_quantile(np.ones(100), 0.5)

    def test_too_few_values_raises(self):
        with pytest.raises(ValueError):
            density_at_quantile([1.0, 2.0], 0.5)


class TestEmpiricalCoverage:
    @pytest.mark.parametrize("phi", [0.5, 0.9, 0.99])
    def test_bound_covers_aggregation_error(self, phi):
        """|y_a - y_e| <= eb should hold in ~95%+ of trials (paper reports
        empirical probability 1 across psi and phi)."""
        rng = np.random.default_rng(7)
        n, m = 8, 2000
        trials = 60
        covered = 0
        for _ in range(trials):
            data = rng.normal(1e6, 5e4, size=n * m)
            agg = Level2Aggregator([phi])
            for i in range(n):
                chunk = np.sort(data[i * m : (i + 1) * m])
                rank = max(1, math.ceil(phi * m))
                agg.accumulate(
                    SubWindowSummary(count=m, quantiles={phi: float(chunk[rank - 1])})
                )
            y_a = agg.result(phi)
            ordered = np.sort(data)
            y_e = float(ordered[max(1, math.ceil(phi * len(data))) - 1])
            eb = error_bound_from_data(data, phi, n, m)
            if abs(y_a - y_e) <= eb:
                covered += 1
        assert covered / trials >= 0.90
