"""Shared fixtures/helpers for the historical-store test battery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.service.monitor import Monitor
from repro.service.spec import MetricSpec
from repro.store import HistoryWriter, SegmentStore

#: The window shape most battery cases use: 4 sub-windows of 250 events.
WINDOW = {"size": 1000, "period": 250}

#: Quantiles tracked by battery metrics.
PHIS = [0.5, 0.9, 0.99]


def make_spec(policy: str, name: str | None = None, **params) -> MetricSpec:
    """A battery MetricSpec for one policy (standard window/quantiles)."""
    return MetricSpec(
        name=name or f"m_{policy}",
        quantiles=PHIS,
        window=dict(WINDOW),
        policy=policy,
        policy_params=params,
    )


def stream_values(seed: int, periods: int, period: int = WINDOW["period"]) -> np.ndarray:
    """A deterministic heavy-tailed stream covering ``periods`` periods."""
    rng = np.random.default_rng(seed)
    return rng.lognormal(mean=3.0, sigma=1.2, size=periods * period)


def write_history(tmp_path, specs, values, subdir: str = "hist") -> SegmentStore:
    """Ingest ``values`` into every spec's metric, recording history.

    Returns the (still-open) store; each metric receives the full stream
    through ``Monitor.observe_batch``, so segments are exactly the
    per-period deltas of the shared stream.
    """
    monitor = Monitor()
    for spec in specs:
        monitor.register(spec)
    writer = HistoryWriter(str(tmp_path / subdir))
    writer.attach(monitor)
    for spec in specs:
        monitor.observe_batch(spec.name, values)
    return writer.store


def offline_reference(spec: MetricSpec, values: np.ndarray, start: int, end: int):
    """The offline ground truth for a range query over ``[start, end)``.

    A fresh policy ingests exactly periods ``[start, end)`` of the
    stream, sealing at every boundary, then answers — the sequential run
    the stored-segment query must reproduce (bit-identically for
    time-composable policies).
    """
    period = spec.window.period
    policy = spec.build_policy()
    for p in range(start, end):
        policy.accumulate_batch(values[p * period : (p + 1) * period])
        policy.seal_subwindow()
    return policy.query()


def as_wire(answer) -> dict:
    """A policy ``query()`` answer in the result-dict quantile encoding."""
    return {repr(phi): float(value) for phi, value in sorted(answer.items())}


@pytest.fixture()
def battery_values() -> np.ndarray:
    """16 periods of the default battery stream (seed 0)."""
    return stream_values(0, 16)
