"""Ablation: Level-1 state backend — dict fast path vs red-black tree.

DESIGN.md §5.1: the paper's Level-1 state is a red-black tree; we provide
an equivalent hash-map backend.  Results must be identical; throughput
differs (CPython dicts vs pointer-chasing trees).  This ablation
quantifies the gap so the backend choice in the headline benches is
transparent.
"""

from __future__ import annotations

from typing import Dict

from repro.core import QLOVEConfig
from repro.evalkit.experiments.common import (
    QMONITOR_PHIS,
    ExperimentResult,
    describe_scale,
    scaled,
    stream_length,
)
from repro.evalkit.reporting import Table
from repro.evalkit.runner import run_accuracy
from repro.evalkit.throughput import measure_throughput
from repro.sketches.registry import make_policy
from repro.streaming.windows import CountWindow
from repro.workloads import generate_netmon

PAPER_WINDOW = 65_536
PAPER_PERIOD = 8_192


def run(scale: float = 1.0, seed: int = 0, evaluations: int = 16) -> ExperimentResult:
    """Compare the two frequency-map backends on identical streams."""
    period = scaled(PAPER_PERIOD, scale)
    n_sub = max(2, scaled(PAPER_WINDOW, scale) // period)
    window = CountWindow(size=n_sub * period, period=period)
    values = generate_netmon(stream_length(window, evaluations), seed=seed)

    table = Table(
        f"Backend ablation (NetMon, window={window.size}, period={period})",
        ["Backend", "M ev/s", "VE% Q0.999", "peak space"],
    )
    data: Dict[str, Dict[str, float]] = {}
    estimates = {}
    for backend in ("dict", "tree"):
        config = QLOVEConfig(backend=backend)
        throughput = measure_throughput(
            lambda config=config: make_policy(
                "qlove", QMONITOR_PHIS, window, config=config
            ),
            values,
            window,
        )
        report = run_accuracy("qlove", values, window, QMONITOR_PHIS, config=config)
        estimates[backend] = report
        data[backend] = {
            "throughput": throughput.million_events_per_second,
            "value_error_999": report.errors.mean_value_error(0.999),
            "space": report.observed_space,
        }
        table.add_row(
            backend,
            f"{throughput.million_events_per_second:.3f}",
            f"{100 * report.errors.mean_value_error(0.999):.2f}",
            str(report.observed_space),
        )

    identical = all(
        abs(
            estimates["dict"].errors.mean_value_error(phi)
            - estimates["tree"].errors.mean_value_error(phi)
        )
        < 1e-12
        for phi in QMONITOR_PHIS
    )
    notes = describe_scale(scale) + (
        "\nBackends produce identical estimates: " + ("yes" if identical else "NO")
    )
    data["identical_results"] = identical
    return ExperimentResult(
        name="ablation_backend", tables=[table], data=data, notes=notes
    )
