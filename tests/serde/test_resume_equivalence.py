"""Resume-equivalence battery: checkpoint anywhere, resume bit-identically.

The uninterrupted run of each registered policy is executed once with a
``checkpoint_sink`` capturing an :class:`EngineCheckpoint` at **every**
period boundary.  For each boundary the checkpoint is round-tripped
through ``json.dumps``/``json.loads``, a fresh query over the remaining
elements is resumed from it, and the resumed ``WindowResult`` stream must
equal the uninterrupted run's remainder **exactly** — all six policies,
randomized ones included (the RNG position rides in the state).
"""

import functools
import json

import pytest

from repro.sketches import PolicyOperator, make_policy, policy_from_state
from repro.streaming import (
    CountWindow,
    EngineCheckpoint,
    ExecutionPlan,
    Query,
    StreamEngine,
    value_stream,
)
from repro.workloads import get_dataset

WINDOW = CountWindow(size=512, period=128)
STREAM_LENGTH = 1500  # 11 period boundaries, window slides past the 4th
PHIS = (0.5, 0.9, 0.99)

CASES = {
    "exact": dict(dataset="netmon", params={}),
    "qlove": dict(dataset="netmon", params={}),
    "cmqs": dict(dataset="netmon", params={"epsilon": 0.05}),
    "am": dict(dataset="netmon", params={"epsilon": 0.05}),
    "random": dict(dataset="netmon", params={"epsilon": 0.05, "seed": 7}),
    "moment": dict(dataset="normal", params={"k": 8}),
}


def build_operator(name):
    case = CASES[name]
    return PolicyOperator(make_policy(name, PHIS, WINDOW, **case["params"]))


def run_with_checkpoints(name, values):
    """The uninterrupted batched run plus a checkpoint per boundary."""
    checkpoints = []
    query = Query(values).windowed_by(WINDOW).aggregate(build_operator(name))
    results = StreamEngine().execute_to_list(
        query,
        ExecutionPlan(
            mode="batched", chunk_size=300, checkpoint_sink=checkpoints.append
        ),
    )
    return results, checkpoints


@pytest.mark.parametrize("name", sorted(CASES))
def test_resume_at_every_boundary_is_bit_identical(name):
    values = get_dataset(CASES[name]["dataset"], STREAM_LENGTH, seed=0)
    full, checkpoints = run_with_checkpoints(name, values)
    assert len(checkpoints) == STREAM_LENGTH // WINDOW.period
    for checkpoint in checkpoints:
        state = json.loads(json.dumps(checkpoint.to_state()))
        query = (
            Query(values[checkpoint.seen :])
            .windowed_by(WINDOW)
            .aggregate(build_operator(name))
        )
        resumed = StreamEngine().execute_to_list(
            query,
            ExecutionPlan(mode="batched", chunk_size=300, resume_from=state),
        )
        assert resumed == full[checkpoint.index :], (
            f"{name}: resume at seen={checkpoint.seen} diverged"
        )


@pytest.mark.parametrize("name", sorted(CASES))
def test_resume_on_the_per_event_path(name):
    """A checkpoint from the batched path resumes the events path too."""
    values = get_dataset(CASES[name]["dataset"], STREAM_LENGTH, seed=1)
    full, checkpoints = run_with_checkpoints(name, values)
    checkpoint = checkpoints[len(checkpoints) // 2]
    query = (
        Query(value_stream(values[checkpoint.seen :]))
        .windowed_by(WINDOW)
        .aggregate(build_operator(name))
    )
    resumed = StreamEngine().execute_to_list(
        query, ExecutionPlan(mode="events", resume_from=checkpoint)
    )
    assert resumed == full[checkpoint.index :]


@pytest.mark.parametrize("name", ["qlove", "exact"])
def test_sharded_resume_and_cross_engine_checkpoints(name):
    """Sharded runs checkpoint/resume; their checkpoints port to the
    single engine (shard state is empty at boundaries by construction)."""
    values = get_dataset(CASES[name]["dataset"], STREAM_LENGTH, seed=2)
    factory = functools.partial(
        make_policy, name, PHIS, WINDOW, **CASES[name]["params"]
    )
    checkpoints = []
    plan = ExecutionPlan(
        mode="sharded",
        n_shards=3,
        policy_factory=factory,
        chunk_size=300,
        checkpoint_sink=checkpoints.append,
    )
    full = StreamEngine().execute_to_list(Query(values).windowed_by(WINDOW), plan)
    for checkpoint in checkpoints:
        state = json.loads(json.dumps(checkpoint.to_state()))
        resumed = StreamEngine().execute_to_list(
            Query(values[checkpoint.seen :]).windowed_by(WINDOW),
            ExecutionPlan(
                mode="sharded",
                n_shards=3,
                policy_factory=factory,
                chunk_size=300,
                resume_from=state,
            ),
        )
        assert resumed == full[checkpoint.index :]
    # Cross-engine: a sharded checkpoint resumed on the batched loop.
    checkpoint = checkpoints[len(checkpoints) // 2]
    query = (
        Query(values[checkpoint.seen :])
        .windowed_by(WINDOW)
        .aggregate(PolicyOperator(factory()))
    )
    resumed = StreamEngine().execute_to_list(
        query, ExecutionPlan(mode="batched", resume_from=checkpoint)
    )
    assert resumed == full[checkpoint.index :]


@pytest.mark.parametrize("name", sorted(CASES))
def test_merge_works_on_checkpoint_restored_policies(name):
    """Policies revived from engine checkpoints still merge correctly."""
    values = get_dataset(CASES[name]["dataset"], STREAM_LENGTH, seed=3)
    _, checkpoints = run_with_checkpoints(name, values)
    state = json.loads(json.dumps(checkpoints[3].to_state()))
    revived = policy_from_state(state["policy"])
    donor = make_policy(name, PHIS, WINDOW, **CASES[name]["params"])
    donor.accumulate_batch(values[checkpoints[3].seen : checkpoints[3].seen + 128])
    donor.seal_subwindow()
    revived.merge(donor)
    assert revived.query()  # answers without raising, post-merge


class TestCheckpointValidation:
    def test_checkpoint_rejects_window_mismatch(self):
        values = get_dataset("netmon", STREAM_LENGTH, seed=0)
        _, checkpoints = run_with_checkpoints("exact", values)
        other = CountWindow(size=256, period=128)
        query = Query(values).windowed_by(other).aggregate(
            PolicyOperator(make_policy("exact", PHIS, other))
        )
        with pytest.raises(ValueError, match="spec/state mismatch"):
            StreamEngine().execute_to_list(
                query,
                ExecutionPlan(mode="batched", resume_from=checkpoints[0]),
            )

    def test_checkpoint_rejects_policy_mismatch(self):
        values = get_dataset("netmon", STREAM_LENGTH, seed=0)
        _, checkpoints = run_with_checkpoints("exact", values)
        query = Query(values).windowed_by(WINDOW).aggregate(
            PolicyOperator(make_policy("cmqs", PHIS, WINDOW, epsilon=0.05))
        )
        with pytest.raises(ValueError, match="spec/state mismatch"):
            StreamEngine().execute_to_list(
                query,
                ExecutionPlan(mode="batched", resume_from=checkpoints[0]),
            )

    def test_unknown_checkpoint_version_is_actionable(self):
        values = get_dataset("netmon", STREAM_LENGTH, seed=0)
        _, checkpoints = run_with_checkpoints("exact", values)
        state = checkpoints[0].to_state()
        state["version"] = 99
        with pytest.raises(ValueError, match="unknown state version"):
            EngineCheckpoint.from_state(state)

    def test_incremental_operators_reject_checkpointing(self):
        from repro.streaming import MeanOperator

        values = get_dataset("netmon", STREAM_LENGTH, seed=0)
        query = Query(values).windowed_by(WINDOW).aggregate(MeanOperator())
        with pytest.raises(ValueError, match="sub-window"):
            StreamEngine().execute_to_list(
                query,
                ExecutionPlan(mode="batched", checkpoint_sink=lambda ck: None),
            )
