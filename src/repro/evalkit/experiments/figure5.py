"""Figure 5: scalability — throughput vs window size, QLOVE vs Exact.

Normal(1e6, 5e4) and Uniform(90, 110) streams, 1K period, window sizes
swept upward (the paper sweeps 1K to 100M on 1-billion-element streams;
we sweep 1K to 1M — the shape, QLOVE flat vs Exact degrading once windows
slide, is established well before that).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.evalkit.experiments.common import (
    QMONITOR_PHIS,
    ExperimentResult,
    scaled,
    stream_length,
)
from repro.evalkit.reporting import Table
from repro.evalkit.throughput import measure_throughput
from repro.sketches.registry import make_policy
from repro.streaming.windows import CountWindow
from repro.workloads import generate_normal, generate_uniform

PAPER_PERIOD = 1_000
DEFAULT_WINDOW_SIZES = (1_000, 10_000, 100_000, 1_000_000)


def run(
    scale: float = 1.0,
    seed: int = 0,
    evaluations: int = 25,
    window_sizes: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Regenerate Figure 5 as two throughput tables (Normal / Uniform)."""
    period = scaled(PAPER_PERIOD, scale)
    sizes = [
        max(period, scaled(w, scale)) for w in (window_sizes or DEFAULT_WINDOW_SIZES)
    ]
    generators = {
        "Normal": generate_normal,
        "Uniform": generate_uniform,
    }
    tables: List[Table] = []
    data: Dict[str, Dict[int, Dict[str, float]]] = {}
    for dataset_name, generator in generators.items():
        table = Table(
            f"Figure 5 ({dataset_name}): throughput vs window size (period={period})",
            ["Window", "QLOVE M ev/s", "Exact M ev/s", "QLOVE/Exact"],
        )
        series: Dict[int, Dict[str, float]] = {}
        for raw_size in sizes:
            n_sub = max(1, raw_size // period)
            window = CountWindow(size=n_sub * period, period=period)
            values = generator(stream_length(window, evaluations), seed=seed)
            rates = {}
            for name in ("qlove", "exact"):
                outcome = measure_throughput(
                    lambda name=name: make_policy(name, QMONITOR_PHIS, window),
                    values,
                    window,
                )
                rates[name] = outcome.million_events_per_second
            ratio = rates["qlove"] / rates["exact"] if rates["exact"] else float("nan")
            table.add_row(
                f"{window.size:,}",
                f"{rates['qlove']:.3f}",
                f"{rates['exact']:.3f}",
                f"{ratio:.2f}x",
            )
            series[window.size] = rates
        tables.append(table)
        data[dataset_name] = series

    notes = (
        "Paper sweeps windows to 100M on 1B-element streams; this "
        "reproduction sweeps to the configured maximum (default 1M). "
        "Expected shape: QLOVE throughput flat, Exact degrading once "
        "windows slide."
    )
    return ExperimentResult(name="figure5", tables=tables, data=data, notes=notes)
