"""Distributed aggregation of QLOVE states (the paper's Section 7 outlook).

"Although the evaluation is based on single machine, our quantile design
can deliver better aggregate throughput while using a fewer number of
machines in distributed computing."  QLOVE's state makes this nearly
free: Level 2 is a per-quantile (sum, count) pair — mergeable by
addition — and the few-k tails are value lists — mergeable by
concatenation.  A coordinator can therefore combine the states of N
independent nodes, each monitoring its own shard of the telemetry, into
a fleet-wide quantile estimate without moving raw data.

This module implements that coordinator at two levels:

- The QLOVE-specific merges :func:`merge_level2` /
  :func:`merge_node_estimates` combine per-node state *transiently*
  (nothing is mutated)::

      nodes = [QLOVEPolicy(phis, window, config) for _ in range(4)]
      ... each node streams its own probes ...
      estimates = merge_node_estimates(nodes)

- :class:`FleetCoordinator` generalises the same idea over the universal
  :meth:`~repro.sketches.base.QuantilePolicy.merge` contract, so *any*
  registered policy — and, recursively, already-combined policies —
  aggregates the same way (fleet-of-fleets).

The merged Level-2 estimate is the mean of *all* live sub-window
quantiles across the fleet (equivalent to a single node that saw every
sub-window); few-k merging runs over the union of the nodes' retained
tails, and a burst on any node puts the fleet in burst mode.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.core.fewk import SOURCE_LEVEL2, SOURCE_SAMPLEK, SOURCE_TOPK, FewKMerger
from repro.core.qlove import QLOVEPolicy
from repro.sketches.base import QuantilePolicy


def _validate_fleet(nodes: Sequence[QLOVEPolicy]) -> None:
    """Reject fleets whose nodes cannot be aggregated coherently.

    Beyond the window/quantile shape, the nodes' *configurations* must
    agree: few-k activation is derived from the config, so a node
    tracking different tail material (or none) would silently skew the
    pooled few-k estimate — or crash the merge with a ``KeyError``.
    """
    if not nodes:
        raise ValueError("need at least one node")
    for node in nodes:
        if not isinstance(node, QLOVEPolicy):
            raise TypeError(
                f"fleet nodes must be QLOVEPolicy instances, got {type(node).__name__}"
            )
    first = nodes[0]
    for node in nodes[1:]:
        if node.phis != first.phis:
            raise ValueError("all nodes must track the same quantiles")
        if node.window != first.window:
            raise ValueError("all nodes must use the same window shape")
        if node.config != first.config:
            raise ValueError("all nodes must share the same QLOVE configuration")


def merge_level2(nodes: Sequence[QLOVEPolicy]) -> Dict[float, float]:
    """Fleet-wide Level-2 estimate: mean over all nodes' sub-window quantiles.

    Exactly what a single QLOVE instance would compute had it sealed every
    node's sub-windows itself — Level-2 state composes by addition.
    """
    _validate_fleet(nodes)
    results: Dict[float, float] = {}
    for phi in nodes[0].phis:
        total = 0.0
        count = 0
        for node in nodes:
            aggregator = node._level2
            count_node = aggregator.live_subwindows(phi)
            if count_node:
                total += aggregator.result(phi) * count_node
                count += count_node
        if count == 0:
            raise ValueError("no sealed sub-windows anywhere in the fleet")
        results[phi] = total / count
    return results


def merge_node_estimates(nodes: Sequence[QLOVEPolicy]) -> Dict[float, float]:
    """Fleet-wide estimates with few-k merging over the union of tails.

    For each quantile with an active few-k pipeline (all nodes share the
    configuration, so activation agrees), the coordinator pools every
    node's live sub-window summaries: top-k merging sees the union of the
    cached largest values, sample-k merging the union of the samples, and
    the fleet counts as bursty while any node's window is bursty.
    """
    _validate_fleet(nodes)
    results = merge_level2(nodes)
    reference = nodes[0]
    pooled = [s for node in nodes for s in node._summaries]
    for phi, ref_merger in reference._mergers.items():
        merger = FewKMerger(phi, reference.window, ref_merger.config)
        bursty = any(node._mergers[phi].window_bursty for node in nodes)
        if merger.samplek_enabled and bursty:
            value = merger.samplek_estimate(pooled)
            if value is not None:
                merger.last_source = SOURCE_SAMPLEK
                results[phi] = value
                continue
        if merger.topk_enabled:
            value = merger.topk_estimate(pooled)
            if value is not None:
                merger.last_source = SOURCE_TOPK
                results[phi] = value
                continue
        merger.last_source = SOURCE_LEVEL2
    return results


def fleet_space_variables(nodes: Sequence[QuantilePolicy]) -> int:
    """Total observed state across the fleet (what a coordinator stores
    transiently is bounded by the same quantity)."""
    return sum(node.space_variables() for node in nodes)


class FleetCoordinator:
    """Aggregate any mergeable :class:`QuantilePolicy` fleet at a coordinator.

    Where :func:`merge_node_estimates` re-derives QLOVE's pooled answer
    from node internals, the coordinator goes through the universal
    :meth:`QuantilePolicy.merge` contract: a fresh policy is built from
    ``policy_factory`` and every node folds into it.  Because merging is
    associative, fleets of fleets compose — a region can combine its
    racks' policies and ship the *combined* policy upward, and the global
    answer is the same as merging every rack directly.

    Nodes are never mutated; the combined policy may share immutable
    state with them, so treat it as a snapshot, not a live node.
    """

    def __init__(self, policy_factory: Callable[[], QuantilePolicy]) -> None:
        self._factory = policy_factory

    def combine(self, nodes: Sequence[QuantilePolicy]) -> QuantilePolicy:
        """Merge every node's state into one fresh policy."""
        if not nodes:
            raise ValueError("need at least one node")
        merged = self._factory()
        for node in nodes:
            merged.merge(node)
        return merged

    def estimate(self, nodes: Sequence[QuantilePolicy]) -> Dict[float, float]:
        """Fleet-wide quantile estimates over the combined state."""
        return self.combine(nodes).query()

    def fleet_report(self, nodes: Sequence[QuantilePolicy]) -> Dict[str, object]:
        """Shard-count and space accounting for one aggregation round."""
        spaces: List[int] = [node.space_variables() for node in nodes]
        return {
            "node_count": len(nodes),
            "node_spaces": spaces,
            "total_space": sum(spaces),
            "max_node_space": max(spaces) if spaces else 0,
        }
