"""Aggregate operators checked against brute-force window recomputation."""

import math
import random

import numpy as np
import pytest

from repro.streaming import (
    CountOperator,
    CountWindow,
    MaxOperator,
    MeanOperator,
    MinOperator,
    Query,
    StreamEngine,
    SumOperator,
    VarianceOperator,
    value_stream,
)


def brute_force(values, size, period, fn):
    """Evaluate fn over every full sliding window at each period boundary."""
    out = []
    for end in range(period, len(values) + 1, period):
        if end >= size:
            out.append(fn(values[end - size : end]))
    return out


OPERATORS = [
    (CountOperator(), len),
    (SumOperator(), lambda w: float(sum(w))),
    (MeanOperator(), lambda w: float(np.mean(w))),
    (MinOperator(), min),
    (MaxOperator(), max),
    (VarianceOperator(), lambda w: float(np.var(w))),
]


@pytest.mark.parametrize("operator,reference", OPERATORS, ids=lambda p: type(p).__name__)
def test_sliding_matches_bruteforce(operator, reference):
    rng = random.Random(2)
    values = [rng.uniform(0, 100) for _ in range(500)]
    size, period = 100, 20
    query = Query(value_stream(values)).window(size, period).aggregate(operator)
    results = [r.result for r in StreamEngine().run(query)]
    expected = brute_force(values, size, period, reference)
    assert len(results) == len(expected)
    for got, want in zip(results, expected):
        assert got == pytest.approx(want, rel=1e-9, abs=1e-9)


@pytest.mark.parametrize("operator,reference", OPERATORS, ids=lambda p: type(p).__name__)
def test_tumbling_matches_bruteforce(operator, reference):
    rng = random.Random(3)
    values = [rng.uniform(-50, 50) for _ in range(300)]
    size = period = 60
    query = Query(value_stream(values)).window(size, period).aggregate(operator)
    results = [r.result for r in StreamEngine().run(query)]
    expected = brute_force(values, size, period, reference)
    assert results == pytest.approx(expected, rel=1e-9, abs=1e-9)


def test_mean_empty_state_is_nan():
    op = MeanOperator()
    assert math.isnan(op.compute_result(op.initial_state()))


def test_variance_empty_state_is_nan():
    op = VarianceOperator()
    assert math.isnan(op.compute_result(op.initial_state()))


def test_min_max_empty_state_is_nan():
    assert math.isnan(MinOperator().compute_result(MinOperator().initial_state()))
    assert math.isnan(MaxOperator().compute_result(MaxOperator().initial_state()))


def test_variance_nonnegative_after_cancellation():
    op = VarianceOperator()
    state = op.initial_state()
    from repro.streaming import Event

    for v in [1e9, 1e9 + 1, 1e9 + 2]:
        state = op.accumulate(state, Event(0.0, v))
    assert op.compute_result(state) >= 0.0
