"""Theorem 1 in action: the CLT error bound across quantiles.

Shows why QLOVE's Level-2 averaging is trustworthy for dense quantiles
and why the bound widens in the sparse tail (the paper's motivation for
few-k merging): for each phi, the observed |y_a - y_e| is compared to
the probabilistic bound computed from the data's density at that
quantile.

Run:  python examples/error_bound_demo.py
"""

import numpy as np

from repro.core import error_bound_from_data
from repro.evalkit import exact_quantile
from repro.workloads import generate_netmon

N_SUB = 8
SUBWINDOW = 16_384
PHIS = [0.25, 0.5, 0.75, 0.9, 0.99, 0.999]


def level2_estimate(values: np.ndarray, phi: float) -> float:
    """Mean of per-sub-window exact quantiles (QLOVE's Level 2)."""
    chunks = values.reshape(N_SUB, SUBWINDOW)
    return float(np.mean([exact_quantile(chunk, phi) for chunk in chunks]))


def main() -> None:
    values = generate_netmon(N_SUB * SUBWINDOW, seed=5)
    print(f"window: {N_SUB} sub-windows x {SUBWINDOW:,} elements "
          f"(NetMon-like)\n")
    print(f"{'phi':>6}  {'exact':>9}  {'level2':>9}  {'|error|':>8}  "
          f"{'bound(95%)':>10}  within")
    for phi in PHIS:
        exact = exact_quantile(values, phi)
        estimate = level2_estimate(values, phi)
        error = abs(estimate - exact)
        bound = error_bound_from_data(values, phi, N_SUB, SUBWINDOW)
        ok = "yes" if error <= bound else "NO"
        print(f"{phi:>6}  {exact:>9.0f}  {estimate:>9.1f}  {error:>8.1f}  "
              f"{bound:>10.1f}  {ok}")

    print("\nThe bound scales with 1 / (sqrt(n m) f(p_phi)): high density at")
    print("the median keeps it tight; the sparse tail blows it up, which is")
    print("exactly where QLOVE switches to few-k merging (Section 4).")


if __name__ == "__main__":
    main()
