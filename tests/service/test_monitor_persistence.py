"""Monitor save/load: resume equivalence and actionable error paths.

The error-path matrix the durable-state contract owes operators:
missing file, malformed JSON, unknown state version, and spec/state
mismatch — each with a message that names the problem and the fix.
"""

import json

import numpy as np
import pytest

from repro import serde
from repro.service import MetricSpec, Monitor, load_specs
from repro.sketches import available_policies
from repro.workloads import get_dataset

ALL_POLICY_SPECS = [
    {"name": "m.qlove", "quantiles": [0.5, 0.99], "window": {"size": 1000, "period": 250},
     "policy": "qlove", "policy_params": {"fewk": {"samplek_fraction": 0.02}}},
    {"name": "m.exact", "quantiles": [0.5, 0.9], "window": {"size": 800, "period": 200},
     "policy": "exact"},
    {"name": "m.cmqs", "quantiles": [0.5, 0.9], "window": {"size": 800, "period": 200},
     "policy": "cmqs", "policy_params": {"epsilon": 0.05}},
    {"name": "m.am", "quantiles": [0.5, 0.9], "window": {"size": 800, "period": 200},
     "policy": "am", "policy_params": {"epsilon": 0.05}},
    {"name": "m.random", "quantiles": [0.5, 0.9], "window": {"size": 800, "period": 200},
     "policy": "random", "policy_params": {"epsilon": 0.05, "seed": 3}},
    {"name": "m.moment", "quantiles": [0.5, 0.9], "window": {"size": 800, "period": 200},
     "policy": "moment", "policy_params": {"k": 8}},
]


def build_monitor():
    monitor = Monitor()
    for spec in ALL_POLICY_SPECS:
        monitor.register(spec)
    return monitor


def feed(monitor, values):
    for name in monitor.metrics():
        monitor.observe_batch(name, values)


def test_specs_cover_every_registered_policy():
    assert {s["policy"] for s in ALL_POLICY_SPECS} == set(available_policies())


def test_save_load_resume_equals_uninterrupted(tmp_path):
    """Mid-stream save → load → continue is bit-identical, every policy."""
    values = get_dataset("netmon", 4000, seed=0)
    full = build_monitor()
    feed(full, values)

    half = build_monitor()
    feed(half, values[:1700])  # mid-period for several metrics
    path = tmp_path / "monitor.json"
    half.save(str(path))

    resumed = Monitor.load(str(path))
    feed(resumed, values[1700:])
    assert resumed.snapshot() == full.snapshot()
    assert resumed.space_report() == full.space_report()
    for name in full.metrics():
        assert resumed.results(name) == full.results(name)


def test_loaded_monitor_still_merges(tmp_path):
    """The fleet contract survives persistence: loaded monitors merge."""
    values = get_dataset("netmon", 2000, seed=1)
    spec = {"name": "rtt", "quantiles": [0.5, 0.99],
            "window": {"size": 1000, "period": 250}, "policy": "qlove"}
    reference = Monitor()
    reference.register(spec)
    reference.observe_batch("rtt", values[:250])

    node = Monitor()
    node.register(spec)
    node.observe_batch("rtt", values[250:500])
    path = tmp_path / "node.json"
    node.save(str(path))

    revived = Monitor.load(str(path))
    reference.merge(revived)
    unsplit = Monitor()
    unsplit.register(spec)
    unsplit.observe_batch("rtt", values[:500])
    assert reference.snapshot() == unsplit.snapshot()


class TestMonitorLoadErrorPaths:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="does not exist"):
            Monitor.load(str(tmp_path / "nope.json"))

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(serde.StateError, match="not valid JSON"):
            Monitor.load(str(path))

    def test_unknown_state_version(self, tmp_path):
        monitor = build_monitor()
        state = monitor.to_state()
        state["version"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(state), encoding="utf-8")
        with pytest.raises(serde.StateError, match="unknown state version"):
            Monitor.load(str(path))

    def test_unknown_policy_state_version(self, tmp_path):
        monitor = build_monitor()
        feed(monitor, get_dataset("netmon", 900, seed=0))
        state = monitor.to_state()
        state["metrics"][0]["policy"]["version"] = 99
        path = tmp_path / "future-policy.json"
        path.write_text(json.dumps(state), encoding="utf-8")
        with pytest.raises(serde.StateError, match="unknown state version"):
            Monitor.load(str(path))

    def test_spec_state_mismatch(self, tmp_path):
        """A tampered file whose policy state disagrees with its spec."""
        donor = Monitor()
        donor.register({"name": "m", "quantiles": [0.5],
                        "window": {"size": 800, "period": 200}, "policy": "exact"})
        other = Monitor()
        other.register({"name": "m", "quantiles": [0.5],
                        "window": {"size": 800, "period": 200}, "policy": "cmqs",
                        "policy_params": {"epsilon": 0.05}})
        state = donor.to_state()
        state["metrics"][0]["policy"] = other.to_state()["metrics"][0]["policy"]
        path = tmp_path / "mismatch.json"
        path.write_text(json.dumps(state), encoding="utf-8")
        with pytest.raises(serde.StateError, match="spec/state mismatch"):
            Monitor.load(str(path))

    def test_parameter_mismatch(self, tmp_path):
        """Same policy type, different algorithm parameter: still rejected."""
        save = Monitor()
        save.register({"name": "m", "quantiles": [0.5],
                       "window": {"size": 800, "period": 200}, "policy": "cmqs",
                       "policy_params": {"epsilon": 0.05}})
        state = save.to_state()
        # The spec now claims a different epsilon than the saved state.
        state["metrics"][0]["spec"]["policy_params"] = {"epsilon": 0.02}
        path = tmp_path / "eps.json"
        path.write_text(json.dumps(state), encoding="utf-8")
        with pytest.raises(serde.StateError, match="epsilon"):
            Monitor.load(str(path))

    def test_moment_method_mismatch(self, tmp_path):
        """The solver method is part of the spec/state contract too."""
        save = Monitor()
        save.register({"name": "m", "quantiles": [0.5],
                       "window": {"size": 800, "period": 200}, "policy": "moment",
                       "policy_params": {"k": 8, "method": "maxent"}})
        state = save.to_state()
        state["metrics"][0]["spec"]["policy_params"]["method"] = "quadrature"
        path = tmp_path / "method.json"
        path.write_text(json.dumps(state), encoding="utf-8")
        with pytest.raises(serde.StateError, match="method"):
            Monitor.load(str(path))

    def test_wrong_format_tag(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}), encoding="utf-8")
        with pytest.raises(serde.StateError, match="not a monitor checkpoint"):
            Monitor.load(str(path))


class TestLoadSpecsErrorPaths:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="does not exist"):
            load_specs(str(tmp_path / "nope.json"))

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("[{oops", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_specs(str(path))

    def test_missing_metrics_key(self, tmp_path):
        path = tmp_path / "object.json"
        path.write_text(json.dumps({"series": []}), encoding="utf-8")
        with pytest.raises(ValueError, match="'metrics'"):
            load_specs(str(path))


def test_roundtrip_through_spec_and_state_dicts():
    """to_state → json → from_state preserves results and counters."""
    values = get_dataset("netmon", 1200, seed=2)
    monitor = build_monitor()
    feed(monitor, values)
    revived = Monitor.from_state(json.loads(json.dumps(monitor.to_state())))
    assert revived.snapshot() == monitor.snapshot()
    assert revived.metrics() == monitor.metrics()
    for name in monitor.metrics():
        assert revived.results(name) == monitor.results(name)
        assert revived._channels[name].seen == monitor._channels[name].seen
