"""Burst detection: is the current tail stochastically larger than before?

"To detect bursty traffic, we identify if the sampled largest values in
the current sub-window are distributionally different and stochastically
larger than those in the adjacent former sub-window.  We use an existing
methodology for it [22]" (Section 4.3) — [22] is the Mann–Whitney U test.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import serde
from repro.stats import mann_whitney_u

#: State-format version written by :meth:`BurstDetector.to_state`.
BURST_STATE_VERSION = 1


class BurstDetector:
    """One-sided Mann–Whitney comparison of consecutive sub-window tails."""

    __slots__ = ("alpha", "min_samples", "_previous", "_bursty")

    def __init__(self, alpha: float = 0.05, min_samples: int = 3) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if min_samples < 2:
            raise ValueError("min_samples must be at least 2")
        self.alpha = alpha
        self.min_samples = min_samples
        self._previous: Optional[Sequence[float]] = None
        self._bursty = False

    @property
    def bursty(self) -> bool:
        """Verdict after the most recent :meth:`observe` call."""
        return self._bursty

    def observe(self, tail_samples: Sequence[float]) -> bool:
        """Feed the sealed sub-window's tail samples; return burst verdict.

        The first sub-window (no predecessor) and under-sampled tails are
        never flagged — bursts are detected, not presumed.
        """
        previous = self._previous
        self._previous = tuple(tail_samples)
        if (
            previous is None
            or len(previous) < self.min_samples
            or len(tail_samples) < self.min_samples
        ):
            self._bursty = False
            return False
        outcome = mann_whitney_u(tail_samples, previous, alternative="greater")
        self._bursty = outcome.rejects_at(self.alpha)
        return self._bursty

    def reset(self) -> None:
        """Forget history (stream restart)."""
        self._previous = None
        self._bursty = False

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Configuration plus the comparison history, JSON-safe."""
        state = serde.header("burst_detector", BURST_STATE_VERSION)
        state["alpha"] = float(self.alpha)
        state["min_samples"] = int(self.min_samples)
        state["previous"] = (
            None if self._previous is None else serde.float_list(self._previous)
        )
        state["bursty"] = bool(self._bursty)
        return state

    @classmethod
    def from_state(cls, state: dict) -> "BurstDetector":
        serde.check_state(
            state, "burst_detector", BURST_STATE_VERSION, "burst detector"
        )
        serde.require_fields(
            state, ("alpha", "min_samples", "previous", "bursty"), "burst detector"
        )
        detector = cls(
            alpha=float(state["alpha"]), min_samples=int(state["min_samples"])
        )
        previous = state["previous"]
        detector._previous = None if previous is None else tuple(
            float(v) for v in previous
        )
        detector._bursty = bool(state["bursty"])
        return detector
