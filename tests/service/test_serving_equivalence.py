"""Served-vs-offline equivalence: the acceptance battery for serving.

For **every registered policy**, the snapshot and per-period results a
:class:`TelemetryServer` answers over the wire — fed by a
multi-connection :class:`LoadGenerator` — must be **bit-identical** to
an offline :class:`Monitor` ingesting the same stream.  And a server
killed mid-stream must resume from its checkpoint to the identical
final report.

Two mechanisms carry the guarantee end to end:

- floats survive the wire exactly (``repr`` round-trip on the JSON
  protocol, raw IEEE-754 bytes on the binary one — the battery runs
  over both);
- the load generator's global per-metric sequence numbers let the
  server's consumer reorder concurrent connections back into the exact
  offline stream order.
"""

import numpy as np
import pytest

from repro.service import LoadGenerator, Monitor, TelemetryClient, TelemetryServer
from repro.sketches.registry import available_policies

EVENTS = 12_000
BLOCK_SIZE = 800
WINDOW = {"size": 4000, "period": 1000}
SEED = 7

#: One metric per registered policy, all served by a single monitor.
POLICY_SPECS = [
    {
        "name": f"rtt.{policy}",
        "quantiles": [0.5, 0.9, 0.99],
        "window": WINDOW,
        "policy": policy,
    }
    for policy in available_policies()
]


def build_monitor() -> Monitor:
    monitor = Monitor()
    for spec in POLICY_SPECS:
        monitor.register(spec)
    return monitor


def offline_reference(values: np.ndarray, block_size: int = BLOCK_SIZE) -> Monitor:
    """The stream fed offline with the load generator's exact blocks."""
    monitor = build_monitor()
    for start in range(0, len(values), block_size):
        block = values[start : start + block_size]
        for name in monitor.metrics():
            monitor.observe_batch(name, block)
    return monitor


def test_all_six_policies_are_registered():
    """The battery really covers the paper's full policy roster."""
    assert available_policies() == ["am", "cmqs", "exact", "moment", "qlove", "random"]


@pytest.mark.parametrize("protocol", ["json", "binary"])
@pytest.mark.parametrize("connections", [1, 3])
def test_served_snapshot_and_results_bit_identical(connections, protocol):
    with TelemetryServer(build_monitor()) as server:
        host, port = server.address
        generator = LoadGenerator(
            host,
            port,
            dataset="netmon",
            events=EVENTS,
            seed=SEED,
            connections=connections,
            block_size=BLOCK_SIZE,
            protocol=protocol,
        )
        summary = generator.run()
        assert summary["drained"] is True
        assert summary["events"] == EVENTS
        with TelemetryClient(host, port) as client:
            served_snapshot = client.snapshot()
            served_results = {
                spec["name"]: client.results(spec["name"]) for spec in POLICY_SPECS
            }

    offline = offline_reference(generator.event_sequence())
    assert served_snapshot == offline.snapshot()
    for spec in POLICY_SPECS:
        name = spec["name"]
        assert served_results[name] == offline.results(name), (
            f"served results diverge from offline for policy "
            f"{spec['policy']!r} ({name})"
        )


@pytest.mark.parametrize("protocol", ["json", "binary"])
def test_kill_and_resume_reaches_identical_final_report(tmp_path, protocol):
    """Server killed mid-stream → restart from checkpoint → resume the
    stream → final snapshot and results equal the uninterrupted run,
    for every policy at once — over either wire protocol."""
    checkpoint = str(tmp_path / "server-ckpt.json")
    crash_at = 6_400  # a block boundary: 8 whole blocks of 800

    # First server: ingest the stream head, checkpoint, then "crash"
    # (abandoned without a final save or drain).
    first = TelemetryServer(build_monitor(), checkpoint_path=checkpoint)
    first.start()
    host, port = first.address
    generator = LoadGenerator(
        host,
        port,
        dataset="netmon",
        events=EVENTS,
        seed=SEED,
        connections=3,
        block_size=BLOCK_SIZE,
        protocol=protocol,
    )
    generator.run(stop_after=crash_at)
    with TelemetryClient(host, port) as client:
        client.checkpoint()
    first.stop(drain=False)  # crash: no final checkpoint, no clean drain

    # Second server: restore from the checkpoint file, resume the stream
    # from the server's own recorded position.
    restored = Monitor.load(checkpoint)
    with TelemetryServer(restored, checkpoint_path=checkpoint) as second:
        host, port = second.address
        resume_generator = LoadGenerator(
            host,
            port,
            dataset="netmon",
            events=EVENTS,
            seed=SEED,
            connections=3,
            block_size=BLOCK_SIZE,
            protocol=protocol,
        )
        offset = resume_generator.resume_offset()
        assert offset == crash_at
        resume_generator.run(start_offset=offset)
        with TelemetryClient(host, port) as client:
            resumed_snapshot = client.snapshot()
            resumed_results = {
                spec["name"]: client.results(spec["name"]) for spec in POLICY_SPECS
            }

    offline = offline_reference(generator.event_sequence())
    assert resumed_snapshot == offline.snapshot()
    for spec in POLICY_SPECS:
        name = spec["name"]
        assert resumed_results[name] == offline.results(name), (
            f"resumed stream diverges from the uninterrupted run for "
            f"policy {spec['policy']!r} ({name})"
        )


def test_reconnecting_sender_against_live_server_stays_bit_identical():
    """A sender that stops and a *new* generator that continues against
    the same live server: the new run picks up the server's seq
    position (instead of restarting at 0 and being replay-dropped), so
    the final answers still equal the offline run."""
    half = (EVENTS // 2 // BLOCK_SIZE) * BLOCK_SIZE
    with TelemetryServer(build_monitor()) as server:
        host, port = server.address
        first = LoadGenerator(
            host, port, dataset="netmon", events=EVENTS, seed=SEED,
            connections=2, block_size=BLOCK_SIZE,
        )
        first.run(stop_after=half)
        second = LoadGenerator(
            host, port, dataset="netmon", events=EVENTS, seed=SEED,
            connections=3, block_size=BLOCK_SIZE,
        )
        assert second.resume_offset() == half
        second.run(start_offset=half)
        with TelemetryClient(host, port) as client:
            served_snapshot = client.snapshot()
            served_results = {
                spec["name"]: client.results(spec["name"]) for spec in POLICY_SPECS
            }

    offline = offline_reference(first.event_sequence())
    assert served_snapshot == offline.snapshot()
    for spec in POLICY_SPECS:
        assert served_results[spec["name"]] == offline.results(spec["name"])


def test_resume_offset_rejects_non_uniform_server_state():
    monitor = build_monitor()
    monitor.observe_batch("rtt.exact", np.ones(500))  # others stay at 0
    with TelemetryServer(monitor) as server:
        host, port = server.address
        generator = LoadGenerator(host, port, events=EVENTS, seed=SEED)
        with pytest.raises(ValueError, match="different element counts"):
            generator.resume_offset()
