"""Section 5.4 data-redundancy study: low-precision throughput gains.

Dropping two low-order digits (precision 100 us instead of 1 us) shrinks
the value domain, hence the red-black-tree state, and speeds up both
QLOVE's Level-1 stage and the Exact baseline; the paper reports
2.7x/1.8x on tumbling windows (NetMon/Search) and 3.7-4.6x on sliding
windows, noting "this benefits both Exact and QLOVE".

Both policies run here on the *tree* backend — the paper's substrate and
the one whose per-operation cost actually depends on the number of unique
values; a CPython hash map is O(1) per element regardless of redundancy,
which would hide the effect being studied (see DESIGN.md §5.1).
"""

from __future__ import annotations

from typing import Dict

from repro.core import QLOVEConfig
from repro.evalkit.experiments.common import (
    QMONITOR_PHIS,
    ExperimentResult,
    describe_scale,
    scaled,
    stream_length,
)
from repro.evalkit.reporting import Table
from repro.evalkit.throughput import measure_throughput
from repro.sketches.registry import make_policy
from repro.streaming.windows import CountWindow
from repro.workloads import generate_netmon, generate_search, reduce_precision

PAPER_PERIOD = 1_000
SLIDING_SUBWINDOWS = 32


def run(scale: float = 1.0, seed: int = 0, evaluations: int = 30) -> ExperimentResult:
    """Measure throughput gain of 100-us precision data over 1-us data."""
    period = scaled(PAPER_PERIOD, scale)
    windows = {
        "tumbling": CountWindow.tumbling(period),
        "sliding": CountWindow(size=SLIDING_SUBWINDOWS * period, period=period),
    }
    datasets = {"NetMon": generate_netmon, "Search": generate_search}
    # QLOVE's own 3-digit compression would mask the dataset's precision;
    # disable it so the effect measured is the data redundancy itself (the
    # paper derives the low-precision *datasets*).
    policies = {
        "qlove": lambda window: make_policy(
            "qlove",
            QMONITOR_PHIS,
            window,
            config=QLOVEConfig(quantize_digits=None, backend="tree"),
        ),
        "exact": lambda window: make_policy(
            "exact", QMONITOR_PHIS, window, backend="tree"
        ),
    }

    table = Table(
        f"Redundancy study: throughput gain from 100-us precision "
        f"(tree backend, period={period})",
        ["Policy", "Dataset", "Window", "original M ev/s", "low-prec M ev/s", "speedup"],
    )
    data: Dict[str, Dict[str, float]] = {}
    for policy_name, factory in policies.items():
        for dataset_name, generator in datasets.items():
            for window_name, window in windows.items():
                values = generator(stream_length(window, evaluations), seed=seed)
                coarse = reduce_precision(values)
                rates = {}
                for label, stream in (("original", values), ("lowprec", coarse)):
                    outcome = measure_throughput(
                        lambda window=window, factory=factory: factory(window),
                        stream,
                        window,
                    )
                    rates[label] = outcome.million_events_per_second
                speedup = rates["lowprec"] / rates["original"]
                key = f"{policy_name}/{dataset_name}/{window_name}"
                data[key] = {**rates, "speedup": speedup}
                table.add_row(
                    policy_name.upper(),
                    dataset_name,
                    window_name,
                    f"{rates['original']:.3f}",
                    f"{rates['lowprec']:.3f}",
                    f"{speedup:.2f}x",
                )

    return ExperimentResult(
        name="redundancy", tables=[table], data=data, notes=describe_scale(scale)
    )
