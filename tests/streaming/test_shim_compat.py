"""Backward-compat battery: the deprecated shims vs StreamEngine.execute.

Every legacy one-shot entry point (``run_query``, ``run_query_chunked``,
``run_query_batched``, ``run_sharded``) must produce bit-identical
``WindowResult`` sequences to the unified planner across all registered
policies, and each must emit exactly one ``DeprecationWarning`` per call.
"""

import warnings
from functools import partial

import numpy as np
import pytest

from repro.sketches.base import PolicyOperator
from repro.sketches.registry import available_policies, make_policy
from repro.streaming import (
    CountWindow,
    ExecutionPlan,
    Query,
    StreamEngine,
    chunk_stream,
    value_stream,
)
from repro.streaming.engine import run_query, run_query_batched, run_query_chunked
from repro.streaming.sharded import run_sharded

WINDOW = CountWindow(size=240, period=60)
PHIS = (0.5, 0.9, 0.99)
CHUNK = 128


@pytest.fixture(scope="module")
def values():
    rng = np.random.default_rng(11)
    return np.round(rng.lognormal(mean=6.0, sigma=0.5, size=1_440))


def _operator(policy):
    return PolicyOperator(make_policy(policy, PHIS, WINDOW))


@pytest.fixture(autouse=True)
def _allow_deprecations():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        yield


@pytest.mark.parametrize("policy", available_policies())
def test_run_query_matches_execute(policy, values):
    legacy = run_query(value_stream(values), WINDOW, _operator(policy))
    planned = StreamEngine().execute_to_list(
        Query(value_stream(values)).windowed_by(WINDOW).aggregate(_operator(policy)),
        ExecutionPlan(mode="events"),
    )
    assert legacy == planned
    assert len(legacy) > 0


@pytest.mark.parametrize("policy", available_policies())
def test_run_query_chunked_matches_execute(policy, values):
    legacy = run_query_chunked(chunk_stream(values, CHUNK), WINDOW, _operator(policy))
    planned = StreamEngine().execute_to_list(
        Query(chunk_stream(values, CHUNK))
        .windowed_by(WINDOW)
        .aggregate(_operator(policy)),
        ExecutionPlan(mode="batched"),
    )
    assert legacy == planned
    assert len(legacy) > 0


@pytest.mark.parametrize("policy", available_policies())
def test_run_query_batched_matches_execute(policy, values):
    legacy = run_query_batched(values, WINDOW, _operator(policy), chunk_size=CHUNK)
    planned = StreamEngine().execute_to_list(
        Query(values).windowed_by(WINDOW).aggregate(_operator(policy)),
        ExecutionPlan(mode="batched", chunk_size=CHUNK),
    )
    assert legacy == planned
    assert len(legacy) > 0


@pytest.mark.parametrize("policy", available_policies())
def test_run_sharded_matches_execute(policy, values):
    factory = partial(make_policy, policy, PHIS, WINDOW)
    legacy = run_sharded(
        values, WINDOW, factory, n_shards=3, chunk_size=CHUNK
    )
    planned = StreamEngine().execute_to_list(
        Query(values).windowed_by(WINDOW),
        ExecutionPlan(
            mode="sharded", n_shards=3, chunk_size=CHUNK, policy_factory=factory
        ),
    )
    assert legacy == planned
    assert len(legacy) > 0


@pytest.mark.parametrize("emit_partial", [False, True])
def test_shims_honour_emit_partial(emit_partial, values):
    legacy = run_query_batched(
        values, WINDOW, _operator("exact"), chunk_size=CHUNK, emit_partial=emit_partial
    )
    planned = StreamEngine(emit_partial=emit_partial).execute_to_list(
        Query(values).windowed_by(WINDOW).aggregate(_operator("exact")),
        ExecutionPlan(mode="batched", chunk_size=CHUNK),
    )
    assert legacy == planned


# ----------------------------------------------------------------------
# Deprecation-warning contract: exactly one warning per shim call
# ----------------------------------------------------------------------
def _single_deprecation(record):
    deprecations = [w for w in record if w.category is DeprecationWarning]
    assert len(deprecations) == 1, [str(w.message) for w in record]
    message = str(deprecations[0].message)
    assert "deprecated" in message and "execute" in message
    return message


def test_run_query_emits_exactly_one_deprecation_warning(values):
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        run_query(value_stream(values[:300]), WINDOW, _operator("exact"))
    assert "run_query()" in _single_deprecation(record)


def test_run_query_chunked_emits_exactly_one_deprecation_warning(values):
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        run_query_chunked(chunk_stream(values[:300], CHUNK), WINDOW, _operator("exact"))
    assert "run_query_chunked()" in _single_deprecation(record)


def test_run_query_batched_emits_exactly_one_deprecation_warning(values):
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        run_query_batched(values[:300], WINDOW, _operator("exact"))
    assert "run_query_batched()" in _single_deprecation(record)


def test_run_sharded_emits_exactly_one_deprecation_warning(values):
    with warnings.catch_warnings(record=True) as record:
        warnings.simplefilter("always")
        run_sharded(
            values[:300], WINDOW, partial(make_policy, "exact", PHIS, WINDOW), 2
        )
    assert "run_sharded()" in _single_deprecation(record)
