"""Single-threaded throughput measurement (elements per second).

The paper's throughput metric is "million elements per second (M ev/s)
processed for a single thread".  We stream a dataset through the engine
with the policy under test and divide elements by wall-clock time.
Absolute numbers are hardware- and runtime-specific (pure Python here,
C#/Trill in the paper); the experiments therefore report *ratios* between
policies alongside the raw numbers.

Three ingestion paths are measurable, all driven through the unified
:meth:`StreamEngine.execute <repro.streaming.engine.StreamEngine.execute>`
planner:

- :func:`measure_throughput` — the per-event reference loop
  (``ExecutionPlan(mode="events")``);
- :func:`measure_throughput_batched` — the chunked fast path, where the
  engine slices numpy chunks at period boundaries and policies bulk-ingest
  them.  :func:`compare_ingest_paths` runs both and reports the speedup;
- :func:`measure_throughput_sharded` — the partition-and-merge path
  (``ExecutionPlan(mode="sharded", ...)``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.sketches.base import PolicyOperator, QuantilePolicy
from repro.streaming import ExecutionPlan, Query, StreamEngine, chunk_stream, value_stream
from repro.streaming.windows import CountWindow


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of one throughput measurement."""

    policy: str
    elements: int
    seconds: float
    evaluations: int

    @property
    def events_per_second(self) -> float:
        """Elements processed per wall-clock second."""
        return self.elements / self.seconds if self.seconds > 0 else float("inf")

    @property
    def million_events_per_second(self) -> float:
        """The paper's M ev/s unit."""
        return self.events_per_second / 1e6


def measure_throughput(
    policy_factory: Callable[[], QuantilePolicy],
    values: np.ndarray,
    window: CountWindow,
    repeats: int = 1,
) -> ThroughputResult:
    """Best-of-``repeats`` throughput of a policy over ``values``.

    A fresh policy is built per repeat so state does not leak between
    timings; the best run is reported (standard practice to suppress
    scheduler noise on shared machines).
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    values = np.asarray(values, dtype=np.float64)
    best_seconds = float("inf")
    evaluations = 0
    name = "unknown"
    for _ in range(repeats):
        policy = policy_factory()
        name = policy.name
        query = (
            Query(value_stream(values))
            .windowed_by(window)
            .aggregate(PolicyOperator(policy))
        )
        engine = StreamEngine()
        start = time.perf_counter()
        count = sum(1 for _ in engine.execute(query, ExecutionPlan(mode="events")))
        elapsed = time.perf_counter() - start
        evaluations = count
        best_seconds = min(best_seconds, elapsed)
    return ThroughputResult(
        policy=name,
        elements=len(values),
        seconds=best_seconds,
        evaluations=evaluations,
    )


def measure_throughput_batched(
    policy_factory: Callable[[], QuantilePolicy],
    values: np.ndarray,
    window: CountWindow,
    chunk_size: int = 65_536,
    repeats: int = 1,
) -> ThroughputResult:
    """Best-of-``repeats`` throughput on the batched ingestion path.

    Identical protocol to :func:`measure_throughput` (fresh policy per
    repeat, best run reported); only the ingestion path differs: the
    engine pulls ``chunk_size`` numpy chunks and slices them at period
    boundaries instead of iterating events.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    values = np.asarray(values, dtype=np.float64)
    best_seconds = float("inf")
    evaluations = 0
    name = "unknown"
    for _ in range(repeats):
        policy = policy_factory()
        name = policy.name
        query = (
            Query(chunk_stream(values, chunk_size))
            .windowed_by(window)
            .aggregate(PolicyOperator(policy))
        )
        engine = StreamEngine()
        start = time.perf_counter()
        count = sum(1 for _ in engine.execute(query, ExecutionPlan(mode="batched")))
        elapsed = time.perf_counter() - start
        evaluations = count
        best_seconds = min(best_seconds, elapsed)
    return ThroughputResult(
        policy=name,
        elements=len(values),
        seconds=best_seconds,
        evaluations=evaluations,
    )


def measure_throughput_sharded(
    policy_factory: Callable[[], QuantilePolicy],
    values: np.ndarray,
    window: CountWindow,
    n_shards: int,
    partitioner: str = "round_robin",
    chunk_size: int = 65_536,
    parallel: bool = False,
    repeats: int = 1,
) -> ThroughputResult:
    """Best-of-``repeats`` throughput on the sharded execution path.

    Same protocol as the other two measurements; the stream is
    partitioned across ``n_shards`` policies with per-period merging into
    a master (``parallel=True`` ingests the partitions in a process
    pool — the factory must then be picklable).
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    values = np.asarray(values, dtype=np.float64)
    plan = ExecutionPlan(
        mode="sharded",
        n_shards=n_shards,
        partitioner=partitioner,
        parallel=parallel,
        chunk_size=chunk_size,
        policy_factory=policy_factory,
    )
    best_seconds = float("inf")
    evaluations = 0
    name = "unknown"
    for _ in range(repeats):
        probe = policy_factory()
        name = probe.name
        query = Query(values).windowed_by(window)
        engine = StreamEngine()
        start = time.perf_counter()
        count = sum(1 for _ in engine.execute(query, plan))
        elapsed = time.perf_counter() - start
        evaluations = count
        best_seconds = min(best_seconds, elapsed)
    return ThroughputResult(
        policy=name,
        elements=len(values),
        seconds=best_seconds,
        evaluations=evaluations,
    )


def compare_ingest_paths(
    policy_factory: Callable[[], QuantilePolicy],
    values: np.ndarray,
    window: CountWindow,
    chunk_size: int = 65_536,
    repeats: int = 1,
) -> tuple[ThroughputResult, ThroughputResult]:
    """Measure (per-event, batched) throughput for the same policy/data."""
    per_event = measure_throughput(policy_factory, values, window, repeats=repeats)
    batched = measure_throughput_batched(
        policy_factory, values, window, chunk_size=chunk_size, repeats=repeats
    )
    return per_event, batched
