"""Labeled history recording: per-series logs, derived specs, resume.

The equivalence battery pins the group-by answers; this file pins the
plumbing around them — the derived per-series spec each series persists
under, lazy store registration as series materialise, and the
checkpoint/resume composition for labeled families.
"""

from __future__ import annotations

import pytest

from repro.service.monitor import Monitor
from repro.store import HistoryWriter, SegmentStore

from tests.series.conftest import (
    battery_labelsets,
    ingest_round_robin,
    make_family_spec,
    stream_values,
)

LS = battery_labelsets(fanout=2, hosts_per_region=1)


def labeled_spec(**kwargs):
    return make_family_spec(
        "qlove", name="lat", window={"size": 40, "period": 10}, **kwargs
    )


class TestForSeries:
    def test_derives_a_single_series_spec(self):
        spec = labeled_spec(series={"max_active": 4})
        derived = spec.for_series("lat{host=a,region=eu}")
        assert derived.name == "lat{host=a,region=eu}"
        assert derived.labels is None and derived.series is None
        assert derived.quantiles == spec.quantiles
        assert derived.window == spec.window
        assert derived.policy == spec.policy

    def test_rejected_on_unlabeled_specs(self):
        from tests.series.conftest import make_plain_spec

        with pytest.raises(ValueError, match="not labeled"):
            make_plain_spec(labeled_spec()).for_series("x{a=b}")


class TestLazyStoreRegistration:
    def test_series_register_with_the_store_as_they_materialise(self, tmp_path):
        monitor = Monitor()
        monitor.register(labeled_spec())
        writer = HistoryWriter(str(tmp_path / "hist"))
        writer.attach(monitor)
        assert writer.store.metrics() == []
        for value in stream_values(0, 10):
            monitor.observe("lat", float(value), labels=LS[0])
        assert writer.store.metrics() == ["lat{host=h00,region=r0}"]
        for value in stream_values(1, 10):
            monitor.observe("lat", float(value), labels=LS[1])
        assert len(writer.store.metrics()) == 2

    def test_attach_before_any_observation_then_segments_per_period(
        self, tmp_path
    ):
        monitor = Monitor()
        monitor.register(labeled_spec())
        writer = HistoryWriter(str(tmp_path / "hist"))
        writer.attach(monitor)
        ingest_round_robin(monitor, "lat", stream_values(0, 60), LS)
        # 30 events per series = 3 sealed periods each.
        assert writer.segments_written == 6
        for key in writer.store.metrics():
            segments = writer.store.covering(key, 0, 3)
            assert [s.start_period for s in segments] == [0, 1, 2]
            assert all(s.count == 10 for s in segments)

    def test_reopened_store_accepts_the_same_series_specs(self, tmp_path):
        monitor = Monitor()
        monitor.register(labeled_spec())
        with HistoryWriter(str(tmp_path / "hist")) as writer:
            writer.attach(monitor)
            ingest_round_robin(monitor, "lat", stream_values(0, 40), LS)
        fresh = Monitor()
        fresh.register(labeled_spec())
        with HistoryWriter(str(tmp_path / "hist")) as writer:
            writer.attach(fresh)  # same derived specs: equality enforced
            ingest_round_robin(fresh, "lat", stream_values(0, 40), LS)

    def test_attach_metric_unknown_name_is_actionable(self, tmp_path):
        monitor = Monitor()
        monitor.register(labeled_spec())
        writer = HistoryWriter(str(tmp_path / "hist"))
        with pytest.raises(KeyError, match="not registered"):
            writer.attach_metric(monitor, "nope")


class TestCheckpointResumeComposition:
    @pytest.mark.parametrize("cut", [40, 53], ids=["boundary", "mid-period"])
    def test_resumed_run_writes_the_same_store(self, tmp_path, cut):
        values = stream_values(5, 120)

        def run(subdir, interrupt=None):
            monitor = Monitor()
            monitor.register(labeled_spec(series={"max_active": 1}))
            writer = HistoryWriter(str(tmp_path / subdir))
            writer.attach(monitor)
            if interrupt is None:
                ingest_round_robin(monitor, "lat", values, LS)
            else:
                ingest_round_robin(monitor, "lat", values[:interrupt], LS)
                ckpt = str(tmp_path / f"{subdir}.ckpt.json")
                monitor.save(ckpt)
                writer.close()
                monitor = Monitor.load(ckpt)
                writer = HistoryWriter(str(tmp_path / subdir))
                writer.attach(monitor)
                resume_from = monitor.seen_counts()["lat"]
                for i, value in enumerate(values[resume_from:]):
                    monitor.observe(
                        "lat", float(value),
                        labels=LS[(resume_from + i) % len(LS)],
                    )
            writer.store.close()
            return monitor

        straight = run("a")
        resumed = run("b", interrupt=cut)
        assert resumed.snapshot() == straight.snapshot()

        def segment_map(directory):
            store = SegmentStore(str(tmp_path / directory))
            try:
                return {
                    key: [
                        (s.start_period, s.count, s.state)
                        for s in store.covering(key, 0, 6)
                    ]
                    for key in store.metrics()
                }
            finally:
                store.close()

        assert segment_map("a") == segment_map("b")
