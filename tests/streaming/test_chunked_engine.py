"""Batched (chunked) engine path: equivalence with the per-event loop."""

import numpy as np
import pytest

from repro.streaming import (
    Chunk,
    CountOperator,
    CountWindow,
    MaxOperator,
    MeanOperator,
    MinOperator,
    Query,
    StreamEngine,
    SumOperator,
    TimeWindow,
    VarianceOperator,
    chunk_stream,
    value_stream,
)
from repro.streaming.engine import run_query, run_query_batched, run_query_chunked
from repro.streaming.sources import as_chunk, events_of_chunks

OPERATORS = [
    CountOperator,
    SumOperator,
    MeanOperator,
    VarianceOperator,
    MinOperator,
    MaxOperator,
]

#: Chunk sizes chosen to straddle period/window boundaries in every way:
#: single elements, a divisor of the period, a prime smaller than the
#: period, a prime larger than the period, larger than the window.
CHUNK_SIZES = [1, 5, 7, 23, 1000]


def stream_values(n, seed=0):
    rng = np.random.default_rng(seed)
    return np.round(rng.lognormal(6.0, 0.4, size=n), 1)


class TestChunkSources:
    def test_chunk_stream_covers_all_values(self):
        values = stream_values(103)
        chunks = list(chunk_stream(values, 10))
        assert sum(len(c) for c in chunks) == 103
        np.testing.assert_array_equal(np.concatenate([c.values for c in chunks]), values)

    def test_chunk_stream_timestamps_match_value_stream(self):
        values = stream_values(25)
        chunks = list(chunk_stream(values, 7, with_timestamps=True))
        expanded = list(events_of_chunks(chunks))
        reference = list(value_stream(values))
        assert expanded == reference

    def test_events_of_chunks_synthesises_global_positions(self):
        values = stream_values(25)
        expanded = list(events_of_chunks(chunk_stream(values, 7)))
        assert expanded == list(value_stream(values))

    def test_chunk_validates_alignment(self):
        with pytest.raises(ValueError):
            Chunk(values=np.arange(3.0), timestamps=np.arange(2.0))
        with pytest.raises(ValueError):
            Chunk(values=np.zeros((2, 2)))

    def test_slice_and_compress_are_consistent(self):
        chunk = Chunk(
            values=np.arange(6.0),
            timestamps=np.arange(6.0) * 2.0,
            error_codes=np.array([0, 1, 0, 1, 0, 1]),
        )
        part = chunk.slice(2, 5)
        assert part.values.tolist() == [2.0, 3.0, 4.0]
        assert part.timestamps.tolist() == [4.0, 6.0, 8.0]
        kept = chunk.compress(chunk.values % 2 == 0)
        assert kept.values.tolist() == [0.0, 2.0, 4.0]
        assert kept.error_codes.tolist() == [0, 0, 0]

    def test_as_chunk_wraps_arrays(self):
        chunk = as_chunk(np.arange(4.0))
        assert isinstance(chunk, Chunk)
        assert len(chunk) == 4


class TestCountWindowEquivalence:
    @pytest.mark.parametrize("operator_cls", OPERATORS)
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_sliding_matches_per_event(self, operator_cls, chunk_size):
        values = stream_values(500)
        window = CountWindow(size=60, period=20)
        reference = run_query(value_stream(values), window, operator_cls())
        batched = run_query_chunked(
            chunk_stream(values, chunk_size), window, operator_cls()
        )
        assert batched == reference

    @pytest.mark.parametrize("operator_cls", [SumOperator, MeanOperator])
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_tumbling_matches_per_event(self, operator_cls, chunk_size):
        values = stream_values(500, seed=1)
        window = CountWindow.tumbling(50)
        reference = run_query(value_stream(values), window, operator_cls())
        batched = run_query_chunked(
            chunk_stream(values, chunk_size), window, operator_cls()
        )
        assert batched == reference

    def test_emit_partial_matches_per_event(self):
        values = stream_values(200, seed=2)
        window = CountWindow(size=80, period=20)
        reference = run_query(
            value_stream(values), window, SumOperator(), emit_partial=True
        )
        batched = run_query_chunked(
            chunk_stream(values, 13), window, SumOperator(), emit_partial=True
        )
        assert batched == reference

    def test_run_query_batched_convenience(self):
        values = stream_values(300, seed=3)
        window = CountWindow(size=60, period=30)
        reference = run_query(value_stream(values), window, MeanOperator())
        assert run_query_batched(values, window, MeanOperator(), chunk_size=41) == reference


class TestTimeWindowEquivalence:
    @pytest.mark.parametrize("chunk_size", [1, 7, 64])
    def test_time_incremental_fallback(self, chunk_size):
        values = stream_values(300, seed=4)
        window = TimeWindow(size=30.0, period=10.0)
        reference = run_query(value_stream(values), window, MeanOperator())
        batched = run_query_chunked(
            chunk_stream(values, chunk_size, with_timestamps=True),
            window,
            MeanOperator(),
        )
        assert batched == reference

    @pytest.mark.parametrize("dt", [1.0, 0.1, 2.5])
    def test_fractional_dt_stays_bit_identical(self, dt):
        # Regression: timestamps must be index-computed on both paths;
        # accumulated `t += dt` drifts bitwise for dt=0.1 and shifts
        # elements across slot boundaries.
        values = stream_values(500, seed=7)
        window = TimeWindow(size=30.0 * dt, period=10.0 * dt)
        reference = run_query(
            value_stream(values, dt=dt), window, MeanOperator()
        )
        batched = run_query_chunked(
            chunk_stream(values, 37, dt=dt, with_timestamps=True),
            window,
            MeanOperator(),
        )
        assert batched == reference

    def test_timestamps_required_for_subwindow_operators(self):
        from repro.sketches.base import PolicyOperator
        from repro.sketches.exact import ExactPolicy

        window = TimeWindow(size=20.0, period=10.0)
        policy = ExactPolicy([0.5], CountWindow(size=20, period=10))
        with pytest.raises(ValueError, match="timestamped"):
            run_query_chunked(
                chunk_stream(stream_values(50), 10),
                window,
                PolicyOperator(policy),
            )

    def test_timestamps_required_for_incremental_operators(self):
        # Regression: the per-event fallback must not silently window
        # real-time data over synthesised index timestamps.
        window = TimeWindow(size=20.0, period=10.0)
        with pytest.raises(ValueError, match="timestamped"):
            run_query_chunked(
                chunk_stream(stream_values(50), 10), window, MeanOperator()
            )

    def test_out_of_order_chunks_rejected(self):
        window = TimeWindow(size=20.0, period=10.0)
        chunks = [
            Chunk(values=np.arange(5.0), timestamps=np.array([0.0, 1.0, 2.0, 3.0, 2.5]))
        ]
        with pytest.raises(ValueError, match="ordered"):
            run_query_chunked(chunks, window, MeanOperator())


class TestChunkPipeline:
    def test_where_values_matches_where(self):
        values = stream_values(400, seed=5)
        window = CountWindow(size=40, period=20)
        threshold = float(np.median(values))
        engine = StreamEngine()
        reference = engine.run_to_list(
            Query(value_stream(values))
            .windowed_by(window)
            .where(lambda e: e.value > threshold)
            .aggregate(SumOperator())
        )
        batched = engine.run_chunked_to_list(
            Query(chunk_stream(values, 37))
            .windowed_by(window)
            .where_values(lambda v: v > threshold)
            .aggregate(SumOperator())
        )
        assert batched == reference

    def test_select_values_matches_select(self):
        values = stream_values(200, seed=6)
        window = CountWindow(size=40, period=40)
        engine = StreamEngine()
        reference = engine.run_to_list(
            Query(value_stream(values))
            .windowed_by(window)
            .select(lambda e: e.value * 2.0)
            .aggregate(MaxOperator())
        )
        batched = engine.run_chunked_to_list(
            Query(chunk_stream(values, 23))
            .windowed_by(window)
            .select_values(lambda v: v * 2.0)
            .aggregate(MaxOperator())
        )
        assert batched == reference

    def test_event_stages_rejected_on_chunked_path(self):
        window = CountWindow(size=10, period=10)
        query = (
            Query(chunk_stream(stream_values(20), 5))
            .windowed_by(window)
            .where(lambda e: True)
            .aggregate(SumOperator())
        )
        with pytest.raises(ValueError, match="event-level"):
            list(StreamEngine().run_chunked(query))

    def test_chunk_stages_rejected_on_event_path(self):
        window = CountWindow(size=10, period=10)
        query = (
            Query(value_stream(stream_values(20)))
            .windowed_by(window)
            .where_values(lambda v: v > 0)
            .aggregate(SumOperator())
        )
        with pytest.raises(ValueError, match="run_chunked"):
            list(StreamEngine().run(query))
