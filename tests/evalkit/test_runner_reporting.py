"""Runner, throughput harness, reporting, CLI and experiment registry."""

import numpy as np
import pytest

from repro.evalkit import Table, measure_throughput, run_accuracy
from repro.evalkit.cli import build_parser, main
from repro.evalkit.experiments import available_experiments, get_experiment
from repro.evalkit.reporting import ascii_histogram, format_float
from repro.sketches.registry import make_policy
from repro.streaming import CountWindow


class TestRunAccuracy:
    def test_exact_policy_zero_error(self):
        rng = np.random.default_rng(0)
        window = CountWindow(size=2000, period=500)
        values = rng.uniform(0, 1e6, size=6000)
        report = run_accuracy("exact", values, window, [0.5, 0.99])
        assert report.evaluations == 9
        assert report.value_error_percent(0.5) == 0.0
        assert report.rank_error(0.99) == 0.0
        assert report.observed_space > 0
        assert report.analytical_space == 3 * window.size

    def test_qlove_low_error(self):
        rng = np.random.default_rng(1)
        window = CountWindow(size=4000, period=1000)
        values = rng.normal(1e6, 5e4, size=12000)
        report = run_accuracy("qlove", values, window, [0.5])
        assert report.value_error_percent(0.5) < 1.0
        assert report.policy == "qlove"


class TestThroughput:
    def test_measures_positive_rate(self):
        rng = np.random.default_rng(2)
        window = CountWindow(size=1000, period=500)
        values = rng.uniform(0, 100, size=5000)
        result = measure_throughput(
            lambda: make_policy("qlove", [0.5], window), values, window
        )
        assert result.events_per_second > 0
        assert result.elements == 5000
        assert result.evaluations == 9
        assert result.million_events_per_second == pytest.approx(
            result.events_per_second / 1e6
        )

    def test_invalid_repeats(self):
        window = CountWindow(size=100, period=100)
        with pytest.raises(ValueError):
            measure_throughput(
                lambda: make_policy("qlove", [0.5], window),
                np.ones(100),
                window,
                repeats=0,
            )


class TestReporting:
    def test_table_render(self):
        table = Table("Demo", ["a", "bb"])
        table.add_row(1, 2.5)
        text = table.render()
        assert "Demo" in text
        assert "a" in text and "bb" in text
        assert "1" in text and "2.5" in text

    def test_table_wrong_arity(self):
        table = Table("Demo", ["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_table_markdown(self):
        table = Table("Demo", ["x"])
        table.add_row("v")
        md = table.render_markdown()
        assert "| x |" in md
        assert "| v |" in md

    def test_format_float(self):
        assert format_float(float("nan")) == "NA"
        assert format_float(0.0) == "0"
        assert format_float(1234.5, 0) == "1,234"
        assert format_float(1e-9) == "1.00e-09"

    def test_ascii_histogram(self):
        text = ascii_histogram([5, 10], [0.0, 1.0, 2.0])
        assert text.count("\n") == 1
        assert "10" in text

    def test_ascii_histogram_validation(self):
        with pytest.raises(ValueError):
            ascii_histogram([1], [0.0])


class TestExperimentRegistry:
    def test_all_experiments_registered(self):
        names = available_experiments()
        for expected in [
            "figure1",
            "table1",
            "figure4",
            "figure5",
            "table2",
            "table3",
            "table4",
            "table5",
            "redundancy",
            "pareto",
            "fewk_throughput",
            "ablation_backend",
        ]:
            assert expected in names

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            get_experiment("table99")

    def test_figure1_runs_small(self):
        result = get_experiment("figure1")(scale=0.05)
        assert result.name == "figure1"
        assert result.tables
        assert result.data["q50"] > 0

    def test_table1_runs_tiny(self):
        result = get_experiment("table1")(scale=0.02, evaluations=3)
        assert "qlove" in result.data
        assert result.data["qlove"]["observed_space"] > 0


class TestCli:
    def test_parser_accepts_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--scale", "0.5"])
        assert args.experiment == "table1"
        assert args.scale == 0.5

    def test_main_runs_figure1(self, capsys):
        code = main(["figure1", "--scale", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "figure1" in out
        assert "Q0.5" in out

    def test_main_markdown(self, capsys):
        code = main(["figure1", "--scale", "0.05", "--markdown"])
        assert code == 0
        assert "|" in capsys.readouterr().out
