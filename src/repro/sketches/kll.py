"""KLL-style compactor sketch: the randomized sampling building block.

The "Random" baseline [21] (Luo et al., "Quantiles over Data Streams:
Experimental Comparisons, New Analyses, and Further Improvements") bounds
rank error with constant probability using random sampling.  We implement
the compactor hierarchy that the modern form of that algorithm uses: level
``h`` holds items each representing ``2^h`` stream elements; when a level
overflows, a random half of its sorted items is promoted to the next
level.  Expected rank error is O(n / k) with the capacity schedule below.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from repro import serde

#: State-format version written by :meth:`KLLSketch.to_state`.
KLL_STATE_VERSION = 1


class KLLSketch:
    """Randomized mergeable quantile sketch (compactor hierarchy)."""

    __slots__ = ("k", "_compactors", "_n", "_rng", "_max_size")

    #: Capacity decay per level (top level has capacity k, lower levels
    #: k * C^depth, never below 2), as in the KLL paper.
    _DECAY = 2.0 / 3.0

    def __init__(self, k: int, rng: Optional[random.Random] = None) -> None:
        if k < 4:
            raise ValueError(f"k must be at least 4, got {k}")
        self.k = k
        self._compactors: List[List[float]] = [[]]
        self._n = 0
        self._rng = rng if rng is not None else random.Random()
        self._max_size = self._capacity_total()

    # ------------------------------------------------------------------
    # Size accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of stream elements summarised."""
        return self._n

    def item_count(self) -> int:
        """Retained items across all levels."""
        return sum(len(level) for level in self._compactors)

    def space_variables(self) -> int:
        """Stored variables: one value per retained item."""
        return self.item_count()

    def _capacity(self, level: int) -> int:
        depth = len(self._compactors) - 1 - level
        return max(2, int(math.ceil(self.k * (self._DECAY**depth))))

    def _capacity_total(self) -> int:
        return sum(self._capacity(h) for h in range(len(self._compactors)))

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, value: float) -> None:
        """Add one element to the sketch."""
        self._compactors[0].append(value)
        self._n += 1
        if self.item_count() > self._max_size:
            self._compress()

    def insert_batch(self, values) -> None:
        """Add many elements with one bulk extend per compaction interval.

        Per-element insertion only compacts when the retained-item count
        first exceeds the capacity budget, so between two compactions every
        arrival is a plain level-0 append.  The batch path exploits that:
        it extends level 0 with exactly the number of items that reaches
        the trigger point, compacts, and repeats.  Compactions therefore
        fire at the same stream positions with the same level contents as
        per-element insertion — under a seeded RNG the resulting sketch is
        bit-identical.
        """
        if hasattr(values, "tolist"):  # numpy array -> plain floats
            values = values.tolist()
        level0 = self._compactors[0]
        position = 0
        n = len(values)
        while position < n:
            # Items until the count first exceeds the budget (at least 1:
            # an incomplete compaction can leave the sketch over budget,
            # where per-element insertion also proceeds one at a time).
            room = self._max_size - self.item_count() + 1
            take = min(n - position, max(1, room))
            level0.extend(values[position : position + take])
            self._n += take
            position += take
            if self.item_count() > self._max_size:
                self._compress()

    def _compress(self) -> None:
        for level, items in enumerate(self._compactors):
            if len(items) > self._capacity(level):
                if level + 1 == len(self._compactors):
                    self._compactors.append([])
                    self._max_size = self._capacity_total()
                items.sort()
                offset = self._rng.randrange(2)
                promoted = items[offset::2]
                self._compactors[level + 1].extend(promoted)
                items.clear()
                if self.item_count() <= self._max_size:
                    return

    def merge(self, other: "KLLSketch") -> None:
        """Fold another sketch into this one (same-level concatenation)."""
        while len(self._compactors) < len(other._compactors):
            self._compactors.append([])
            self._max_size = self._capacity_total()
        for level, items in enumerate(other._compactors):
            self._compactors[level].extend(items)
        self._n += other._n
        while self.item_count() > self._max_size:
            before = self.item_count()
            self._compress()
            if self.item_count() == before:
                break

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def to_state(self, include_rng: bool = True) -> dict:
        """Versioned, JSON-safe snapshot (levels verbatim + RNG position).

        ``include_rng=False`` is for owners that share one RNG across many
        sketches (the Random policy): they persist the RNG once at their
        own level and pass it back through ``from_state(..., rng=...)``.
        """
        state = serde.header("kll", KLL_STATE_VERSION)
        state["k"] = int(self.k)
        state["n"] = int(self._n)
        state["compactors"] = [serde.float_list(level) for level in self._compactors]
        state["rng"] = serde.rng_to_state(self._rng) if include_rng else None
        return state

    @classmethod
    def from_state(
        cls, state: dict, rng: Optional[random.Random] = None
    ) -> "KLLSketch":
        """Rebuild a sketch; ``rng`` overrides the stored RNG (sharing)."""
        serde.check_state(state, "kll", KLL_STATE_VERSION, "KLL sketch")
        serde.require_fields(state, ("k", "n", "compactors", "rng"), "KLL sketch")
        if rng is None:
            if state["rng"] is None:
                raise serde.StateError(
                    "KLL sketch: state was saved without an RNG (shared-RNG "
                    "mode); pass rng= explicitly when restoring"
                )
            rng = serde.rng_from_state(state["rng"], "KLL sketch")
        sketch = cls(int(state["k"]), rng=rng)
        sketch._compactors = [serde.float_list(level) for level in state["compactors"]]
        if not sketch._compactors:
            sketch._compactors = [[]]
        sketch._n = int(state["n"])
        sketch._max_size = sketch._capacity_total()
        return sketch

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def weighted_items(self) -> List[Tuple[float, int]]:
        """``(value, weight)`` pairs; weight of level ``h`` items is 2^h."""
        out: List[Tuple[float, int]] = []
        for level, items in enumerate(self._compactors):
            weight = 1 << level
            out.extend((value, weight) for value in items)
        return out

    def query(self, phi: float) -> float:
        """Estimate the phi-quantile of the summarised stream."""
        if not 0.0 < phi <= 1.0:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        if self._n == 0:
            raise ValueError("query() on an empty sketch")
        items = self.weighted_items()
        items.sort(key=lambda pair: pair[0])
        total = sum(weight for _, weight in items)
        rank = max(1, math.ceil(phi * total))
        running = 0
        for value, weight in items:
            running += weight
            if running >= rank:
                return value
        return items[-1][0]
