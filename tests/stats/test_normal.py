"""Normal distribution helpers cross-checked against scipy."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.stats import normal_cdf, normal_pdf, normal_ppf


class TestNormalCdf:
    def test_known_points(self):
        assert normal_cdf(0.0) == pytest.approx(0.5)
        assert normal_cdf(1.96) == pytest.approx(0.975, abs=1e-4)
        assert normal_cdf(-1.96) == pytest.approx(0.025, abs=1e-4)

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=-8.0, max_value=8.0))
    def test_matches_scipy(self, x):
        assert normal_cdf(x) == pytest.approx(scipy_stats.norm.cdf(x), abs=1e-12)


class TestNormalPpf:
    def test_known_points(self):
        assert normal_ppf(0.5) == pytest.approx(0.0, abs=1e-12)
        assert normal_ppf(0.975) == pytest.approx(1.959964, abs=1e-5)

    def test_symmetry(self):
        for p in [0.01, 0.1, 0.3]:
            assert normal_ppf(p) == pytest.approx(-normal_ppf(1 - p), abs=1e-10)

    def test_invalid(self):
        with pytest.raises(ValueError):
            normal_ppf(0.0)
        with pytest.raises(ValueError):
            normal_ppf(1.0)

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=1e-8, max_value=1 - 1e-8))
    def test_matches_scipy(self, p):
        assert normal_ppf(p) == pytest.approx(scipy_stats.norm.ppf(p), abs=1e-8)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=1e-6, max_value=1 - 1e-6))
    def test_roundtrip(self, p):
        assert normal_cdf(normal_ppf(p)) == pytest.approx(p, abs=1e-12)


def test_pdf_peak():
    assert normal_pdf(0.0) == pytest.approx(1.0 / math.sqrt(2 * math.pi))
