"""Dataset registry: instantiate any evaluation dataset by name.

The experiment definitions refer to datasets by the names the paper uses
(``netmon``, ``search``, ``normal``, ``uniform``, ``pareto``, ``ar1``).
AR(1) accepts the coefficient via ``psi``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

import numpy as np

from repro.streaming.partition import StreamPartitioner
from repro.streaming.sources import Chunk, chunk_stream

from repro.workloads.ar1 import generate_ar1
from repro.workloads.netmon import generate_netmon
from repro.workloads.search import generate_search
from repro.workloads.synthetic import generate_normal, generate_pareto, generate_uniform

_GENERATORS: Dict[str, Callable[..., np.ndarray]] = {
    "netmon": generate_netmon,
    "search": generate_search,
    "normal": generate_normal,
    "uniform": generate_uniform,
    "pareto": generate_pareto,
    "ar1": generate_ar1,
}


def available_datasets() -> list[str]:
    """Names accepted by :func:`get_dataset`."""
    return sorted(_GENERATORS)


def get_dataset(
    name: str, size: int, seed: Optional[int] = 0, **params: float
) -> np.ndarray:
    """Generate dataset ``name`` with ``size`` elements.

    Extra ``params`` are forwarded to the generator (e.g. ``psi=0.8`` for
    ``ar1``, ``tail_weight`` for ``netmon``).
    """
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        ) from None
    return generator(size, seed=seed, **params)


def stream_dataset(
    name: str,
    size: int,
    chunk_size: int = 65_536,
    seed: Optional[int] = 0,
    with_timestamps: bool = False,
    **params: float,
) -> Iterator[Chunk]:
    """Dataset ``name`` as a chunk stream for the batched ingestion path.

    Yields zero-copy :class:`~repro.streaming.sources.Chunk` views over the
    generated array — the elements are exactly those of
    :func:`get_dataset` with the same seed, so per-event and batched runs
    of the same experiment see identical data.
    """
    values = get_dataset(name, size, seed=seed, **params)
    return chunk_stream(
        values, chunk_size, with_timestamps=with_timestamps, source=name
    )


def stream_dataset_sharded(
    name: str,
    size: int,
    n_shards: int,
    chunk_size: int = 65_536,
    seed: Optional[int] = 0,
    partitioner: str = "round_robin",
    **params: float,
) -> List[List[Chunk]]:
    """Dataset ``name`` partitioned into ``n_shards`` per-shard chunk streams.

    The fleet-simulation counterpart of :func:`stream_dataset`: shard
    ``k``'s stream holds exactly the elements a
    :class:`~repro.streaming.partition.StreamPartitioner` with the same
    strategy would route to shard ``k``, in arrival order — so feeding
    each stream to an independent node and merging the nodes reproduces
    what a :class:`~repro.streaming.sharded.ShardedEngine` computes over
    the unsplit stream.

    Returns one list of chunks per shard (materialised, since every shard
    draws from the same generated array).
    """
    splitter = StreamPartitioner(n_shards, partitioner)
    shards: List[List[Chunk]] = [[] for _ in range(n_shards)]
    for chunk in stream_dataset(name, size, chunk_size=chunk_size, seed=seed, **params):
        for bucket, part in zip(shards, splitter.split(chunk)):
            if len(part):
                bucket.append(part)
    return shards
