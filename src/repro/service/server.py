"""``TelemetryServer``: a network front door for the :class:`Monitor`.

The paper's deployment shape — and Chambers et al.'s incremental
collectors — is a long-lived process ingesting telemetry from many
networked components with bounded memory.  This module is that process,
stdlib-only (``socket`` + ``threading``), speaking the newline-delimited
JSON protocol of :mod:`repro.service.protocol`:

- **Ingest**: any number of concurrent connections send ``observe``
  blocks.  Accepted blocks land in a bounded queue
  (:class:`IngestQueue`) with explicit backpressure — ``"block"`` mode
  stalls the producing connection (the ack is withheld, so TCP and the
  request/response discipline throttle the sender), ``"shed"`` mode
  drops the block and says so in the ack.
- **Apply**: one consumer thread drains the queue into
  ``Monitor.observe_batch`` (the PR-1 bulk path).  Blocks may carry a
  per-metric sequence number; the consumer reorders on it, so a
  multi-connection sender that numbers blocks globally reproduces the
  exact offline stream order — the served snapshot is then
  **bit-identical** to an offline monitor fed the same stream.
- **Control**: ``snapshot`` / ``results`` / ``stats`` / ``flush`` /
  ``checkpoint`` / ``shutdown`` answer over the same protocol.  Reads
  first wait for the ingest pipeline to drain (bounded by
  ``flush_timeout``), so a reply reflects every block acked before it.
- **Durability**: a checkpoint thread calls :meth:`Monitor.save` every
  ``checkpoint_interval`` seconds (atomic temp-file replace, PR 4); a
  killed server restarts from the file and the resumed stream's final
  report equals the uninterrupted run's.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.service import binary
from repro.service.monitor import Monitor
from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    ConnectionClosed,
    FrameTooLarge,
    ProtocolError,
    error_response,
    ok_response,
    recv_message,
    send_message,
)

#: Backpressure modes an :class:`IngestQueue` implements.
BACKPRESSURE_MODES = ("block", "shed")

#: Where a block lands: a plain metric name, or — for labeled metrics —
#: ``(metric, labels, series_key)``.  The series key is the reorder
#: cursor's identity, so every series gets its own sequence space.
Route = Union[str, Tuple[str, Mapping[str, str], str]]

#: One queued ingest item: route, optional sequence number, values, and
#: whether this is a shed *marker* — a zero-event placeholder a shedding
#: server enqueues so the consumer can advance past the dropped block's
#: seq instead of parking every later block behind a permanent gap.
Block = Tuple[Route, Optional[int], np.ndarray, bool]


def _route_key(route: Route) -> str:
    """The reorder-buffer identity of a route (the series key when
    labeled; for plain metrics, the metric name)."""
    return route if isinstance(route, str) else route[2]


class IngestQueue:
    """A bounded block queue with explicit, documented backpressure.

    ``capacity`` is counted in blocks (one ``observe`` message each), so
    the server's buffered-but-unapplied memory is bounded by
    ``capacity * max block size`` regardless of how many connections
    push concurrently.

    - ``mode="block"``: :meth:`put` blocks until the consumer frees a
      slot — lossless; the producing connection simply stalls.
    - ``mode="shed"``: :meth:`put` returns ``False`` immediately when
      full — lossy under overload, by declared choice; shed blocks and
      events are counted.
    """

    def __init__(self, capacity: int = 64, mode: str = "block") -> None:
        if not isinstance(capacity, int) or capacity < 1:
            raise ValueError(f"queue capacity must be a positive int, got {capacity!r}")
        if mode not in BACKPRESSURE_MODES:
            raise ValueError(
                f"unknown backpressure mode {mode!r}; "
                f"accepted: {list(BACKPRESSURE_MODES)}"
            )
        self.capacity = capacity
        self.mode = mode
        self._queue: "queue.Queue[Optional[Block]]" = queue.Queue(maxsize=capacity)
        self._lock = threading.Lock()
        self.accepted_blocks = 0
        self.accepted_events = 0
        self.shed_blocks = 0
        self.shed_events = 0

    def put(self, block: Block, timeout: Optional[float] = None) -> bool:
        """Enqueue one block; returns whether it was accepted.

        In ``"block"`` mode this waits (up to ``timeout``) for space and
        raises :class:`queue.Full` only on timeout; in ``"shed"`` mode a
        full queue sheds immediately and returns ``False``.
        """
        if self.mode == "shed":
            try:
                self._queue.put_nowait(block)
            except queue.Full:
                with self._lock:
                    self.shed_blocks += 1
                    self.shed_events += len(block[2])
                return False
        else:
            self._queue.put(block, timeout=timeout)
        with self._lock:
            self.accepted_blocks += 1
            self.accepted_events += len(block[2])
        return True

    def get(self, timeout: Optional[float] = None) -> Optional[Block]:
        """Dequeue the next block (None is the consumer-shutdown sentinel)."""
        return self._queue.get(timeout=timeout)

    def put_marker(self, block: Block) -> None:
        """Enqueue a shed marker, bypassing the capacity bound.

        Markers carry no events (a few dozen bytes each), so letting them
        exceed ``capacity`` keeps the memory bound honest while keeping
        the sequence space gap-free under shedding.
        """
        with self._queue.mutex:
            self._queue.queue.append(block)
            self._queue.not_empty.notify()

    def drop_all(self) -> int:
        """Discard every queued block (crash simulation); returns how many."""
        with self._queue.mutex:
            dropped = len(self._queue.queue)
            self._queue.queue.clear()
            self._queue.not_full.notify_all()
        return dropped

    def close(self) -> None:
        """Enqueue the shutdown sentinel (bypasses the capacity bound)."""
        # A plain put() could deadlock against a full queue if the
        # consumer already exited; growing by one sentinel is harmless.
        with self._queue.mutex:
            self._queue.queue.append(None)
            self._queue.not_empty.notify()

    def qsize(self) -> int:
        return self._queue.qsize()

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "mode": self.mode,
                "depth": self._queue.qsize(),
                "accepted_blocks": self.accepted_blocks,
                "accepted_events": self.accepted_events,
                "shed_blocks": self.shed_blocks,
                "shed_events": self.shed_events,
            }


class TelemetryServer:
    """Serve a :class:`Monitor` over TCP (see module docstring).

    Parameters
    ----------
    monitor:
        The monitor to front; metrics must already be registered.
    host, port:
        Bind address. ``port=0`` picks an ephemeral port (read it back
        from :attr:`address` after :meth:`start`).
    queue_blocks, backpressure:
        Ingest-queue capacity (in blocks) and mode (``"block"``/``"shed"``).
    checkpoint_path, checkpoint_interval:
        When both are set, a daemon thread saves the monitor every
        ``checkpoint_interval`` seconds; a final save runs on clean
        shutdown and on the ``checkpoint`` control op.
    flush_timeout:
        Upper bound on how long ``flush``/``snapshot``/``results``/
        ``stats``/``checkpoint`` wait for the ingest pipeline to drain
        before answering with whatever has been applied.
    history_writer:
        A :class:`~repro.store.writer.HistoryWriter` already attached to
        ``monitor``; enables the ``history`` op (time-range quantile
        queries over the durable segment store, answering with the same
        result dicts ``python -m repro query`` renders).
    """

    def __init__(
        self,
        monitor: Monitor,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        queue_blocks: int = 64,
        backpressure: str = "block",
        checkpoint_path: Optional[str] = None,
        checkpoint_interval: Optional[float] = None,
        flush_timeout: float = 30.0,
        history_writer=None,
    ) -> None:
        if checkpoint_interval is not None and checkpoint_interval <= 0:
            raise ValueError(
                f"checkpoint_interval must be positive, got {checkpoint_interval}"
            )
        if checkpoint_interval is not None and checkpoint_path is None:
            raise ValueError(
                "checkpoint_interval without checkpoint_path; pass the file "
                "to save the monitor state to"
            )
        self.monitor = monitor
        self._host = host
        self._port = port
        self.ingest_queue = IngestQueue(queue_blocks, backpressure)
        self.checkpoint_path = checkpoint_path
        self.checkpoint_interval = checkpoint_interval
        self.flush_timeout = flush_timeout
        self.history_writer = history_writer

        #: Guards every read/write of the monitor (consumer applies,
        #: control ops read, checkpoint thread saves).
        self._monitor_lock = threading.Lock()
        #: Pipeline accounting: accepted == applied + parked ⇔ drained.
        #: Also guards structural access to the reorder buffers, which
        #: the consumer mutates while control threads count them.
        self._pipeline = threading.Condition()
        self._applied_blocks = 0
        self._applied_events = 0
        self._forced_blocks = 0
        self._duplicate_blocks = 0
        #: Per-route reorder buffers: route key (metric name, or series
        #: key for labeled blocks) -> seq -> (route, values, is_marker).
        #: Written by the consumer thread, sized by control threads;
        #: every structural access holds ``self._pipeline``.
        self._pending: Dict[str, Dict[int, Tuple["Route", np.ndarray, bool]]] = {}
        self._next_seq: Dict[str, int] = {}

        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._connections: List[socket.socket] = []
        self._connections_lock = threading.Lock()
        self._stopping = threading.Event()
        self._shutdown_requested = threading.Event()
        #: Crash simulation: stop(drain=False) — the consumer skips the
        #: forced apply of orphaned parked blocks.
        self._abandon = False
        self._started = False
        self._checkpoint_saves = 0
        self._checkpoint_error: Optional[str] = None
        self._started_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._listener is None:
            raise RuntimeError("server is not started; call start() first")
        return self._listener.getsockname()[:2]

    def start(self) -> "TelemetryServer":
        """Bind, then spawn the accept, consumer and checkpoint threads."""
        if self._started:
            raise RuntimeError("server is already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(128)
        listener.settimeout(0.2)
        self._listener = listener
        self._started = True
        self._started_at = time.time()
        for name, target in (
            ("telemetry-accept", self._accept_loop),
            ("telemetry-consume", self._consume_loop),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        if self.checkpoint_path is not None and self.checkpoint_interval is not None:
            thread = threading.Thread(
                target=self._checkpoint_loop, name="telemetry-checkpoint", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, drain: bool = True) -> None:
        """Shut down: stop accepting, drain the queue, final checkpoint.

        With ``drain=True`` (the default) every block accepted before the
        call is applied to the monitor before threads exit — zero event
        loss on a clean shutdown.  ``drain=False`` abandons queued and
        parked blocks unapplied (crash simulation for tests).
        """
        if not self._started or self._stopping.is_set():
            self._stopping.set()
            return
        self._stopping.set()
        if drain:
            # A sender that died mid-gap leaves parked blocks that no
            # flush can resolve; the consumer force-applies them after
            # the sentinel, so only the queue itself must go quiescent.
            self._wait_drained(self.flush_timeout, ignore_parked=True)
        else:
            self._abandon = True
            self.ingest_queue.drop_all()
        self.ingest_queue.close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        with self._connections_lock:
            for conn in self._connections:
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    conn.close()
                except OSError:
                    pass
            self._connections.clear()
        if self._listener is not None:
            self._listener.close()
        if drain and self.checkpoint_path is not None:
            self._save_checkpoint()
        if self.history_writer is not None:
            # Appends are flushed per segment; this just closes handles.
            self.history_writer.close()

    def wait_shutdown(self, timeout: Optional[float] = None) -> bool:
        """Block until a client sends the ``shutdown`` op (True) or timeout."""
        return self._shutdown_requested.wait(timeout=timeout)

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Accept + connection threads
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._connections_lock:
                self._connections.append(conn)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()

    def _send(
        self, conn: socket.socket, response: dict, protocol: str, request_op: object
    ) -> None:
        """Write one response in the connection's negotiated framing."""
        if protocol == "json":
            send_message(conn, response)
        else:
            conn.sendall(binary.encode_response(response, request_op))

    def _serve_connection(self, conn: socket.socket) -> None:
        stream = conn.makefile("rb")
        # Every connection starts on the JSON wire; a ``hello`` op may
        # switch it to the binary framing for all subsequent frames.
        protocol = "json"
        try:
            while not self._stopping.is_set():
                request_op: object = None
                try:
                    if protocol == "json":
                        request = recv_message(stream)
                    else:
                        frame = binary.recv_frame(stream)
                        request = None if frame is None else binary.decode_request(*frame)
                except FrameTooLarge as exc:
                    # The binary framing's length prefix lets the receiver
                    # drain an oversized payload and stay synchronised; an
                    # oversized JSON line leaves an unreadable tail, so the
                    # connection must drop after answering.
                    try:
                        self._send(conn, error_response(str(exc)), protocol, None)
                    except OSError:
                        break
                    if exc.recoverable:
                        continue
                    break
                except ProtocolError as exc:
                    try:
                        self._send(conn, error_response(str(exc)), protocol, None)
                    except OSError:
                        break  # peer sent garbage and hung up
                    continue
                except (ConnectionClosed, OSError):
                    break
                if request is None:
                    break
                request_op = request.get("op")
                next_protocol = protocol
                try:
                    if request_op == "hello":
                        # The hello response itself still travels on the
                        # current framing; the switch starts at the next frame.
                        response, next_protocol = self._op_hello(request, protocol)
                    else:
                        response = self._handle(request)
                except Exception as exc:  # keep the connection alive
                    response = error_response(
                        f"internal error handling {request_op!r}: {exc}"
                    )
                try:
                    self._send(conn, response, protocol, request_op)
                except ProtocolError as exc:
                    # e.g. a response that cannot ride the JSON wire
                    # (non-finite floats): report instead of going silent.
                    try:
                        self._send(conn, error_response(str(exc)), protocol, None)
                    except (ProtocolError, OSError):
                        break
                except OSError:
                    break
                protocol = next_protocol
        finally:
            stream.close()
            try:
                conn.close()
            except OSError:
                pass
            with self._connections_lock:
                if conn in self._connections:
                    self._connections.remove(conn)

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    def _handle(self, request: dict) -> dict:
        op = request.get("op")
        if op == "observe":
            return self._op_observe(request)
        if op == "ping":
            return ok_response(
                pong=True,
                metrics=self.monitor.metrics(),
                labels={
                    spec.name: list(spec.labels)
                    for spec in self.monitor.specs()
                    if spec.labels is not None
                },
            )
        if op == "flush":
            drained = self._wait_drained(self.flush_timeout)
            return ok_response(drained=drained, **self._pipeline_stats())
        if op == "snapshot":
            return self._op_snapshot()
        if op == "results":
            return self._op_results(request)
        if op == "stats":
            return self._op_stats()
        if op == "checkpoint":
            return self._op_checkpoint()
        if op == "history":
            return self._op_history(request)
        if op == "group_by":
            return self._op_group_by(request)
        if op == "state":
            return self._op_state()
        if op == "merge":
            return self._op_merge(request)
        if op == "hello":
            # Reached only through direct _handle calls (tests, embedding);
            # the connection loop intercepts hello to switch its framing.
            return self._op_hello(request, "json")[0]
        if op == "shutdown":
            self._shutdown_requested.set()
            return ok_response(stopping=True)
        return error_response(
            f"unknown op {op!r}; supported: observe, snapshot, results, "
            "flush, stats, checkpoint, history, group_by, state, merge, "
            "shutdown, ping, hello"
        )

    def _op_hello(self, request: dict, protocol: str) -> Tuple[dict, str]:
        """Negotiate the connection's wire protocol.

        Returns ``(response, next_protocol)``.  A failed negotiation
        leaves the connection on its current protocol — servers keep
        speaking JSON to clients that never (successfully) negotiate.
        """
        requested = request.get("protocol", "json")
        if requested not in ("json", "binary"):
            return (
                error_response(
                    f"unknown protocol {requested!r}; this server speaks "
                    "'json' and 'binary'"
                ),
                protocol,
            )
        version = request.get("version", binary.BINARY_VERSION)
        if requested == "binary" and version != binary.BINARY_VERSION:
            return (
                error_response(
                    f"unsupported binary protocol version {version!r}; this "
                    f"server speaks version {binary.BINARY_VERSION}"
                ),
                protocol,
            )
        return (
            ok_response(
                protocol=requested,
                version=binary.BINARY_VERSION,
                max_message_bytes=MAX_MESSAGE_BYTES,
            ),
            requested,
        )

    def _op_observe(self, request: dict) -> dict:
        metric = request.get("metric")
        if not isinstance(metric, str) or metric not in self.monitor:
            return error_response(
                f"unknown metric {metric!r}; registered: {self.monitor.metrics()}"
            )
        labels = request.get("labels")
        labeled = metric in self.monitor.labeled_metrics()
        route: Route = metric
        if labeled:
            if not isinstance(labels, dict):
                return error_response(
                    f"metric {metric!r} is labeled; send 'labels' as a "
                    "{name: value} object with every observe block"
                )
            try:
                # Validates against the schema and yields the canonical
                # series key — the block's reorder-cursor identity.
                route = (metric, labels, self.monitor.series_route(metric, labels))
            except ValueError as exc:
                return error_response(str(exc))
        elif labels is not None:
            return error_response(
                f"metric {metric!r} is not labeled; drop 'labels' or "
                "register the metric with a label schema"
            )
        values = request.get("values")
        if isinstance(values, np.ndarray):
            # A binary-protocol observe: the decoded frame hands over the
            # float64 array directly — no python list ever materialises.
            array = np.asarray(values, dtype=np.float64)
        elif isinstance(values, list):
            try:
                array = np.asarray(values, dtype=np.float64)
            except (TypeError, ValueError):
                return error_response("'values' must contain only finite numbers")
        else:
            return error_response(
                f"'values' must be a JSON array of numbers, got "
                f"{type(values).__name__}"
            )
        seq = request.get("seq")
        if seq is not None and (not isinstance(seq, int) or seq < 0):
            return error_response(f"'seq' must be a non-negative integer, got {seq!r}")
        if array.ndim != 1:
            return error_response("'values' must be a flat array of numbers")
        if len(array) and not np.isfinite(array).all():
            # NaN/inf would poison quantiles and make saved checkpoints
            # non-strict JSON (json.dumps writes bare 'Infinity').
            return error_response(
                "'values' must contain only finite numbers (got NaN or "
                "infinity)"
            )
        if len(array) == 0:
            if seq is not None:
                # Zero events, but the seq cursor must still advance or
                # every later block of this route parks behind the gap.
                self.ingest_queue.put_marker(
                    (route, seq, np.empty(0, dtype=np.float64), True)
                )
            return ok_response(accepted=True, events=0)
        accepted = self.ingest_queue.put((route, seq, array, False))
        if not accepted and seq is not None:
            # Keep the sequence space gap-free: a marker tells the
            # consumer "seq N was shed, advance past it" so later blocks
            # don't park forever behind the dropped one.
            self.ingest_queue.put_marker(
                (route, seq, np.empty(0, dtype=np.float64), True)
            )
        return ok_response(accepted=accepted, events=int(len(array)))

    def _op_snapshot(self) -> dict:
        drained = self._wait_drained(self.flush_timeout)
        labeled = self.monitor.labeled_metrics()

        def wire(estimates):
            if estimates is None:
                return None
            return {repr(phi): value for phi, value in estimates.items()}

        with self._monitor_lock:
            snapshot = {
                name: (
                    {key: wire(latest) for key, latest in entry.items()}
                    if name in labeled
                    else wire(entry)
                )
                for name, entry in self.monitor.snapshot().items()
            }
        return ok_response(snapshot=snapshot, drained=drained, labeled=labeled)

    def _op_results(self, request: dict) -> dict:
        metric = request.get("metric")
        if not isinstance(metric, str) or metric not in self.monitor:
            return error_response(
                f"unknown metric {metric!r}; registered: {self.monitor.metrics()}"
            )
        labels = request.get("labels")
        if labels is not None and not isinstance(labels, dict):
            return error_response("'labels' must be a {name: value} object")
        drained = self._wait_drained(self.flush_timeout)
        with self._monitor_lock:
            try:
                emitted = self.monitor.results(metric, labels=labels)
            except (KeyError, ValueError) as exc:
                message = exc.args[0] if exc.args else str(exc)
                return error_response(str(message))
            results = [
                {
                    "index": result.index,
                    "window_count": result.window_count,
                    "end": result.end,
                    "result": {
                        repr(phi): value for phi, value in result.result.items()
                    },
                }
                for result in emitted
            ]
        return ok_response(metric=metric, results=results, drained=drained)

    def _op_group_by(self, request: dict) -> dict:
        """Answer a live group-by over a labeled metric's current window."""
        metric = request.get("metric")
        if not isinstance(metric, str) or metric not in self.monitor:
            return error_response(
                f"unknown metric {metric!r}; registered: {self.monitor.metrics()}"
            )
        by = request.get("by")
        if not isinstance(by, (str, list)) or not by:
            return error_response(
                "'by' must be a label name or a non-empty array of label names"
            )
        quantiles = request.get("quantiles")
        if quantiles is not None and (
            not isinstance(quantiles, list)
            or not all(isinstance(phi, (int, float)) for phi in quantiles)
        ):
            return error_response("'quantiles' must be a JSON array of numbers")
        drained = self._wait_drained(self.flush_timeout)
        with self._monitor_lock:
            try:
                result = self.monitor.group_by(metric, by, quantiles)
            except (KeyError, ValueError) as exc:
                message = exc.args[0] if exc.args else str(exc)
                return error_response(str(message))
        return ok_response(result=result, drained=drained)

    def _op_stats(self) -> dict:
        drained = self._wait_drained(self.flush_timeout)
        labeled = set(self.monitor.labeled_metrics())
        with self._monitor_lock:
            metrics = self.monitor.space_report()
            seen = self.monitor.seen_counts()
            with self._pipeline:
                next_seqs = {
                    name: (
                        # A labeled metric's seq spaces are per-series;
                        # report the family's frontier (senders that fan
                        # out uniformly resume from it — LoadGenerator).
                        max(
                            (
                                cursor
                                for key, cursor in self._next_seq.items()
                                if key.startswith(name + "{")
                            ),
                            default=0,
                        )
                        if name in labeled
                        else self._next_seq.get(name, 0)
                    )
                    for name in self.monitor.metrics()
                }
        for name, report in metrics.items():
            report["seen"] = seen[name]
            # Where this run's seq numbering stands: a sender joining a
            # live server continues from here (LoadGenerator does).
            report["next_seq"] = next_seqs[name]
        checkpoint: Dict[str, object] = {"path": self.checkpoint_path}
        if self.checkpoint_path is not None:
            checkpoint["interval"] = self.checkpoint_interval
            checkpoint["saves"] = self._checkpoint_saves
            checkpoint["last_error"] = self._checkpoint_error
        return ok_response(
            drained=drained,
            metrics=metrics,
            ingest=self.ingest_queue.stats(),
            pipeline=self._pipeline_stats(),
            checkpoint=checkpoint,
            uptime=(time.time() - self._started_at) if self._started_at else 0.0,
        )

    def _op_checkpoint(self) -> dict:
        if self.checkpoint_path is None:
            return error_response(
                "server has no checkpoint path; start it with "
                "checkpoint_path= (CLI: --checkpoint PATH)"
            )
        drained = self._wait_drained(self.flush_timeout)
        if not self._save_checkpoint():
            return error_response(
                f"checkpoint save to {self.checkpoint_path!r} failed: "
                f"{self._checkpoint_error}"
            )
        return ok_response(
            path=self.checkpoint_path, drained=drained, saves=self._checkpoint_saves
        )

    def _op_state(self) -> dict:
        """Ship the monitor's full serialized state to the caller.

        The checkpoint-shipping pull: a peer rebuilds an identical
        monitor with ``Monitor.from_state`` (a warm standby, an offline
        analyser) or folds it into its own via the ``merge`` op.  On the
        binary protocol the state travels as one opaque ``OP_STATE``
        frame rather than inline JSON.
        """
        drained = self._wait_drained(self.flush_timeout)
        with self._monitor_lock:
            state = self.monitor.to_state()
        return ok_response(state=state, drained=drained)

    def _op_merge(self, request: dict) -> dict:
        """Fold a shipped monitor state into the served monitor.

        The push side of checkpoint shipping: per-shard monitors merged
        at period boundaries reproduce the unsplit stream bit-for-bit
        (the ``Monitor.merge`` guarantee).  Every metric in the shipped
        state must be registered here with an equal spec.
        """
        state = request.get("state")
        if not isinstance(state, dict):
            return error_response(
                "'merge' needs 'state': a serialized monitor state object "
                "(the 'state' op or Monitor.to_state() produces one)"
            )
        try:
            other = Monitor.from_state(state)
        except (KeyError, TypeError, ValueError) as exc:
            return error_response(f"bad monitor state: {exc}")
        drained = self._wait_drained(self.flush_timeout)
        with self._monitor_lock:
            try:
                self.monitor.merge(other)
            except (TypeError, ValueError) as exc:
                return error_response(str(exc))
        return ok_response(merged=True, metrics=other.metrics(), drained=drained)

    def _op_history(self, request: dict) -> dict:
        """Answer a historical quantile query from the segment store.

        Drains ingest first, so the answer covers every period sealed by
        blocks acked before this request — then runs the same query
        functions the ``python -m repro query`` CLI uses, returning the
        identical result dict (the CLI renders server and local answers
        through one renderer, so the bytes match).
        """
        if self.history_writer is None:
            return error_response(
                "server has no history store; start it with a history "
                "writer (CLI: --history DIR)"
            )
        from repro.store.query import query_at, query_range, query_series
        from repro.store.store import StoreError

        metric = request.get("metric")
        if not isinstance(metric, str):
            return error_response(
                f"'metric' must be a metric name string, got "
                f"{type(metric).__name__}"
            )
        at = request.get("at")
        start = request.get("start")
        end = request.get("end")
        step = request.get("step")
        quantiles = request.get("quantiles")
        if quantiles is not None and (
            not isinstance(quantiles, list)
            or not all(isinstance(phi, (int, float)) for phi in quantiles)
        ):
            return error_response("'quantiles' must be a JSON array of numbers")
        if (at is None) == (start is None and end is None):
            return error_response(
                "pass either 'at' (one period) or 'start'+'end' (a period "
                "range), not both / neither"
            )
        drained = self._wait_drained(self.flush_timeout)
        store = self.history_writer.store
        try:
            with self._monitor_lock:
                if at is not None:
                    if step is not None:
                        return error_response("'step' needs a 'start'+'end' range")
                    result = query_at(store, metric, at, quantiles)
                elif step is not None:
                    result = query_series(store, metric, start, end, step, quantiles)
                else:
                    result = query_range(store, metric, start, end, quantiles)
        except StoreError as exc:
            return error_response(str(exc))
        except (TypeError, ValueError) as exc:
            return error_response(f"bad history query: {exc}")
        return ok_response(result=result, drained=drained)

    # ------------------------------------------------------------------
    # Consumer: queue → Monitor.observe_batch
    # ------------------------------------------------------------------
    def _consume_loop(self) -> None:
        while True:
            block = self.ingest_queue.get()
            if block is None:
                break
            route, seq, values, marker = block
            with self._monitor_lock:
                self._apply(route, seq, values, marker)
        # Shutdown: apply any parked out-of-order blocks rather than lose
        # them (their sender died before filling the gap) — unless the
        # shutdown is a crash simulation (stop(drain=False)).
        with self._monitor_lock:
            with self._pipeline:
                orphaned = {
                    key: sorted(parked.items())
                    for key, parked in self._pending.items()
                }
                self._pending.clear()
                self._pipeline.notify_all()
            if self._abandon:
                return
            for key in sorted(orphaned):
                for seq, (route, values, marker) in orphaned[key]:
                    if marker:
                        continue
                    self._ingest(route, values)
                    with self._pipeline:
                        self._applied_blocks += 1
                        self._forced_blocks += 1
                        self._applied_events += len(values)
                        self._pipeline.notify_all()

    def _ingest(self, route: Route, values: np.ndarray) -> None:
        """Hand one block's values to the monitor (per-series if labeled)."""
        if isinstance(route, str):
            self.monitor.observe_batch(route, values)
        else:
            self.monitor.observe_batch(route[0], values, labels=route[1])

    def _apply(
        self, route: Route, seq: Optional[int], values: np.ndarray, marker: bool
    ) -> None:
        """Apply one block, reordering on the route's sequence number.

        The reorder cursor lives per *route key* — the metric name, or
        the series key for labeled blocks — so every series has its own
        independent sequence space.
        """
        if seq is None:
            self._apply_now(route, values, marker)
            return
        key = _route_key(route)
        next_seq = self._next_seq.setdefault(key, 0)
        if seq < next_seq:
            # A replay of an already-applied block (e.g. a client retry);
            # applying it twice would double-count, so drop and account.
            with self._pipeline:
                if not marker:
                    self._applied_blocks += 1
                    self._duplicate_blocks += 1
                self._pipeline.notify_all()
            return
        if seq > next_seq:
            with self._pipeline:
                self._pending.setdefault(key, {})[seq] = (route, values, marker)
                self._pipeline.notify_all()
            return
        self._apply_now(route, values, marker)
        self._next_seq[key] = next_seq + 1
        while True:
            with self._pipeline:
                parked = self._pending.get(key)
                ready = parked.pop(self._next_seq[key], None) if parked else None
            if ready is None:
                break
            self._apply_now(ready[0], ready[1], ready[2])
            self._next_seq[key] += 1

    def _apply_now(self, route: Route, values: np.ndarray, marker: bool) -> None:
        if marker:
            # A shed block's placeholder: advance the seq cursor only —
            # the events were dropped at the queue boundary, by policy.
            with self._pipeline:
                self._pipeline.notify_all()
            return
        self._ingest(route, values)
        with self._pipeline:
            self._applied_blocks += 1
            self._applied_events += len(values)
            self._pipeline.notify_all()

    def _parked_blocks(self) -> int:
        """Parked *data* blocks (markers excluded — they were never
        'accepted', so counting them would skew every drain equation).
        Callers hold ``self._pipeline``."""
        return sum(
            1
            for parked in self._pending.values()
            for _, _, marker in parked.values()
            if not marker
        )

    def _pipeline_stats(self) -> Dict[str, int]:
        with self._pipeline:
            return {
                "applied_blocks": self._applied_blocks,
                "applied_events": self._applied_events,
                "parked_blocks": self._parked_blocks(),
                "forced_blocks": self._forced_blocks,
                "duplicate_blocks": self._duplicate_blocks,
            }

    def _wait_drained(self, timeout: float, ignore_parked: bool = False) -> bool:
        """Wait until every accepted block is applied (or parked-free).

        Drained means: nothing in the queue, nothing mid-apply, and no
        reorder gaps — the monitor reflects every acked event.  Under
        sustained concurrent ingest this may time out; the caller then
        answers with the state as of the deadline.  ``ignore_parked``
        relaxes the gap condition (shutdown force-applies parked blocks
        itself, so it only needs the queue quiescent).
        """
        deadline = time.monotonic() + timeout

        def drained() -> bool:
            # Every accepted block is either applied (counted, duplicates
            # included), parked behind a reorder gap, or still queued.
            stats = self.ingest_queue.stats()
            parked = self._parked_blocks()
            if ignore_parked:
                return (
                    stats["depth"] == 0
                    and stats["accepted_blocks"] == self._applied_blocks + parked
                )
            return (
                stats["depth"] == 0
                and parked == 0
                and stats["accepted_blocks"] == self._applied_blocks
            )

        with self._pipeline:
            while not drained():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._pipeline.wait(timeout=min(remaining, 0.5))
        return True

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _checkpoint_loop(self) -> None:
        assert self.checkpoint_interval is not None
        while not self._stopping.wait(timeout=self.checkpoint_interval):
            self._save_checkpoint()

    def _save_checkpoint(self) -> bool:
        """Save the monitor; never raises (a transient disk error must
        not kill the periodic thread or turn shutdown into a traceback —
        it is recorded and surfaced via stats / the checkpoint op)."""
        assert self.checkpoint_path is not None
        try:
            with self._monitor_lock:
                self.monitor.save(self.checkpoint_path)
        except Exception as exc:  # disk errors, serde failures — record all
            self._checkpoint_error = str(exc)
            return False
        self._checkpoint_error = None
        self._checkpoint_saves += 1
        return True
