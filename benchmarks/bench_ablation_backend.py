"""Ablation: dict vs red-black-tree Level-1 backends."""


def test_ablation_backend(run_experiment):
    result = run_experiment("ablation_backend", scale=0.5, evaluations=12)
    data = result.data

    # The two backends must agree exactly on results.
    assert data["identical_results"] is True
    # Both produce sane throughput; the dict fast path should not lose.
    assert data["dict"]["throughput"] >= data["tree"]["throughput"] * 0.8
