"""Cross-protocol equivalence: JSON wire, binary wire, mixed fleets.

The served-vs-offline battery (``test_serving_equivalence``) runs over
both transports; this file pins the properties that are specifically
*cross*-protocol:

- a heterogeneous fleet — JSON and binary senders interleaved on one
  server — still applies in the exact offline order;
- the answer a server gives is a property of the stream, not of the
  wire: JSON-fed and binary-fed servers serialize to byte-identical
  states;
- the tentpole's equivalence gate: binary wire + the fused QLOVE ingest
  path reproduces the JSON wire + pre-fusion reference path bit for
  bit, for every registered policy;
- serialized monitor state shipped over the ``state``/``merge`` ops
  reproduces the unsplit stream (the ``Monitor.merge`` period-boundary
  guarantee, now end to end over the wire).
"""

import json

import numpy as np
import pytest

from repro.core.summary import SubWindowBuilder
from repro.service import (
    LoadGenerator,
    Monitor,
    TelemetryClient,
    TelemetryServer,
)
from repro.sketches.registry import available_policies

EVENTS = 12_000
BLOCK_SIZE = 800
WINDOW = {"size": 4000, "period": 1000}
SEED = 7

POLICY_SPECS = [
    {
        "name": f"rtt.{policy}",
        "quantiles": [0.5, 0.9, 0.99],
        "window": WINDOW,
        "policy": policy,
    }
    for policy in available_policies()
]


def build_monitor() -> Monitor:
    monitor = Monitor()
    for spec in POLICY_SPECS:
        monitor.register(spec)
    return monitor


def offline_reference(values: np.ndarray) -> Monitor:
    monitor = build_monitor()
    for start in range(0, len(values), BLOCK_SIZE):
        block = values[start : start + BLOCK_SIZE]
        for name in monitor.metrics():
            monitor.observe_batch(name, block)
    return monitor


def serve_run(protocol: str, connections: int = 4):
    """One served run; returns (snapshot, results, serialized state)."""
    with TelemetryServer(build_monitor()) as server:
        host, port = server.address
        generator = LoadGenerator(
            host,
            port,
            dataset="netmon",
            events=EVENTS,
            seed=SEED,
            connections=connections,
            block_size=BLOCK_SIZE,
            protocol=protocol,
        )
        summary = generator.run()
        assert summary["drained"] is True
        # The state pull rides the binary wire: the moment policy's state
        # carries ±inf, which the strict JSON encoder refuses (see
        # test_binary_protocol for the pinned error).
        with TelemetryClient(host, port, protocol="binary") as client:
            return (
                client.snapshot(),
                {
                    spec["name"]: client.results(spec["name"])
                    for spec in POLICY_SPECS
                },
                client.pull_state(),
                generator.event_sequence(),
            )


def test_mixed_fleet_applies_in_exact_offline_order():
    """JSON and binary senders interleaved on one server: the consumer's
    seq reordering restores the exact offline stream order regardless of
    which wire each block arrived on."""
    snapshot, results, state, values = serve_run("mixed", connections=4)
    offline = offline_reference(values)
    assert snapshot == offline.snapshot()
    for spec in POLICY_SPECS:
        name = spec["name"]
        assert results[name] == offline.results(name), (
            f"mixed-fleet results diverge from offline for policy "
            f"{spec['policy']!r}"
        )
    assert json.dumps(state, sort_keys=True) == json.dumps(
        offline.to_state(), sort_keys=True
    )


def test_mixed_fleet_alternates_protocols_per_connection():
    generator = LoadGenerator("h", 1, protocol="mixed", connections=4)
    assert [generator.connection_protocol(i) for i in range(4)] == [
        "json",
        "binary",
        "json",
        "binary",
    ]


def test_json_and_binary_fed_servers_serialize_byte_identically():
    """The wire must be invisible in the answer: two servers fed the
    same stream over different protocols serialize to the same bytes."""
    snap_json, res_json, state_json, _ = serve_run("json")
    snap_bin, res_bin, state_bin, _ = serve_run("binary")
    assert snap_json == snap_bin
    assert res_json == res_bin
    assert json.dumps(state_json, sort_keys=True) == json.dumps(
        state_bin, sort_keys=True
    )


def test_binary_fused_matches_json_reference_path(monkeypatch):
    """The tentpole's equivalence gate: binary wire + fused QLOVE ingest
    == JSON wire + the pre-fusion reference loop, for every registered
    policy, down to the serialized state bytes."""
    snap_fused, res_fused, state_fused, values = serve_run("binary")

    # Pin the pre-fusion reference loop under every builder-based policy,
    # then replay offline over the blocks the JSON sender would carry.
    monkeypatch.setattr(
        SubWindowBuilder, "extend", SubWindowBuilder.extend_reference
    )
    reference = offline_reference(values)

    assert snap_fused == reference.snapshot()
    for spec in POLICY_SPECS:
        name = spec["name"]
        assert res_fused[name] == reference.results(name), (
            f"fused binary-served results diverge from the reference "
            f"path for policy {spec['policy']!r}"
        )
    assert json.dumps(state_fused, sort_keys=True) == json.dumps(
        reference.to_state(), sort_keys=True
    )


@pytest.mark.parametrize("protocol", ["json", "binary"])
def test_wire_merge_shipping_reproduces_unsplit_stream(protocol):
    """Per-shard monitors pushed over the ``merge`` op at period
    boundaries reproduce the unsplit offline stream — checkpoint/merge
    shipping as opaque state frames, end to end over either wire."""
    from repro.workloads.registry import get_dataset

    period = WINDOW["period"]
    shards = 4
    specs = [
        spec for spec in POLICY_SPECS if spec["policy"] in ("qlove", "exact")
    ]

    def build():
        monitor = Monitor()
        for spec in specs:
            monitor.register(spec)
        return monitor

    values = get_dataset("netmon", EVENTS, seed=SEED)
    usable = len(values) - len(values) % period
    stream = values[:usable]

    single = build()
    for spec in specs:
        single.observe_batch(spec["name"], stream)

    nodes = [build() for _ in range(shards)]
    with TelemetryServer(build()) as server:
        host, port = server.address
        with TelemetryClient(host, port, protocol=protocol) as client:
            for start in range(0, usable, period):
                block = stream[start : start + period]
                for k, node in enumerate(nodes):
                    for spec in specs:
                        node.observe_batch(spec["name"], block[k::shards])
                for node in nodes:
                    ack = client.push_merge(node.to_state())
                    assert ack["merged"] is True
                    node.reset()
            served_results = {
                spec["name"]: client.results(spec["name"]) for spec in specs
            }

    # Emitted results (the Monitor.merge bit-identity contract) — the
    # serialized in-flight map may legally order its raw-value store
    # differently under sharding, so state bytes are not compared here.
    for spec in specs:
        assert served_results[spec["name"]] == single.results(spec["name"]), (
            f"wire-merged results diverge from the unsplit stream for "
            f"policy {spec['policy']!r}"
        )
