"""CLI checkpoint→kill→resume: the resumed report equals the full run's.

Each run is a separate ``python -m repro monitor`` process, so this is a
true crash-recovery rehearsal: the first process dies after saving its
checkpoint, and a brand-new process finishes the stream from the file.
"""

import json
import os
import subprocess
import sys

import pytest

SPECS = {
    "metrics": [
        {
            "name": "rtt",
            "quantiles": [0.5, 0.99],
            "window": {"size": 2000, "period": 500},
            "policy": "qlove",
            "policy_params": {"fewk": {"samplek_fraction": 0.01}},
        },
        {
            "name": "rtt.exact",
            "quantiles": [0.5, 0.9],
            "window": {"size": 1500, "period": 500},
            "policy": "exact",
        },
    ]
}


def run_cli(args):
    env = dict(os.environ)
    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "..", "src")
    )
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "monitor", *args],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    return completed


def final_snapshot(stdout: str) -> list:
    lines = stdout.splitlines()
    start = lines.index("final snapshot:")
    return lines[start : start + 1 + len(SPECS["metrics"]) * 2]


@pytest.fixture()
def specs_path(tmp_path):
    path = tmp_path / "specs.json"
    path.write_text(json.dumps(SPECS), encoding="utf-8")
    return str(path)


def test_checkpoint_kill_resume_matches_uninterrupted(specs_path, tmp_path):
    common = ["--dataset", "netmon", "--seed", "0", "--chunk-size", "1300"]
    full = run_cli([specs_path, *common, "--events", "8000"])
    assert full.returncode == 0, full.stderr

    checkpoint = str(tmp_path / "ckpt.json")
    # "Crash" mid-stream: same dataset, stream dies after 4,700 elements.
    first = run_cli(
        [specs_path, *common, "--events", "8000", "--stop-after", "4700",
         "--checkpoint", checkpoint]
    )
    assert first.returncode == 0, first.stderr
    assert os.path.exists(checkpoint)

    resumed = run_cli(
        [specs_path, *common, "--events", "8000", "--resume", checkpoint]
    )
    assert resumed.returncode == 0, resumed.stderr
    assert "resumed 2 metric(s)" in resumed.stdout
    assert final_snapshot(resumed.stdout) == final_snapshot(full.stdout)
    # The resumed process only streamed the unseen remainder.
    assert "streaming 3,300" in resumed.stdout


def test_resume_rejects_non_uniform_checkpoint(specs_path, tmp_path):
    """A checkpoint whose metrics saw different element counts (built via
    the API, not the CLI's uniform fan-out) cannot be resumed — even when
    one metric has seen nothing at all."""
    import numpy as np

    import sys as _sys
    _sys.path.insert(0, os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "..", "src")))
    from repro.service import Monitor

    monitor = Monitor()
    for spec in SPECS["metrics"]:
        monitor.register(spec)
    monitor.observe_batch("rtt", np.ones(1000))  # rtt.exact stays at 0
    checkpoint = str(tmp_path / "uneven.json")
    monitor.save(checkpoint)

    resumed = run_cli(
        [specs_path, "--dataset", "netmon", "--events", "8000",
         "--resume", checkpoint]
    )
    assert resumed.returncode != 0
    assert "different element counts" in resumed.stderr


def test_resume_rejects_mismatched_spec_file(specs_path, tmp_path):
    checkpoint = str(tmp_path / "ckpt.json")
    first = run_cli(
        [specs_path, "--dataset", "netmon", "--events", "4000",
         "--checkpoint", checkpoint]
    )
    assert first.returncode == 0, first.stderr

    other = dict(SPECS)
    other["metrics"] = [dict(SPECS["metrics"][0], policy="exact", policy_params={})] + SPECS["metrics"][1:]
    other_path = tmp_path / "other.json"
    other_path.write_text(json.dumps(other), encoding="utf-8")
    resumed = run_cli(
        [str(other_path), "--dataset", "netmon", "--events", "8000",
         "--resume", checkpoint]
    )
    assert resumed.returncode != 0
    assert "spec/state mismatch" in resumed.stderr
