"""Bounded keeper of the k largest stream values.

Few-k merging (Section 4) caches, per sub-window, the ``k`` largest raw
values seen so far.  A min-heap of size ``k`` gives O(log k) per arrival and
O(1) rejection of values below the current k-th largest, which is the common
case on telemetry streams where tail values are rare.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List

import numpy as np

from repro import serde

#: State-format version written by :meth:`TopKKeeper.to_state`.
TOPK_STATE_VERSION = 1


class TopKKeeper:
    """Maintain the ``k`` largest values offered so far (with duplicates).

    ``k = 0`` is a valid degenerate keeper that retains nothing, used when a
    few-k pipeline is disabled for a quantile.
    """

    __slots__ = ("_k", "_heap")

    def __init__(self, k: int, values: Iterable[float] = ()) -> None:
        if k < 0:
            raise ValueError("k must be non-negative")
        self._k = k
        self._heap: List[float] = []
        for value in values:
            self.offer(value)

    @property
    def k(self) -> int:
        """Capacity of the keeper."""
        return self._k

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self) -> Iterator[float]:
        return iter(self._heap)

    def offer(self, value: float) -> bool:
        """Consider ``value``; return True if it was retained."""
        if self._k == 0:
            return False
        heap = self._heap
        if len(heap) < self._k:
            heapq.heappush(heap, value)
            return True
        if value <= heap[0]:
            return False
        heapq.heapreplace(heap, value)
        return True

    def offer_batch(self, values: np.ndarray) -> None:
        """Consider a whole array at once.

        The retained multiset after per-element offers is simply the ``k``
        largest of (current heap ∪ values), so the batch path pre-selects
        the array's ``k`` largest with ``np.partition`` and rebuilds the
        heap once — identical contents, no per-element heap churn.
        """
        if self._k == 0:
            return
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        if values.size > self._k:
            candidates = np.partition(values, values.size - self._k)[-self._k :]
        else:
            candidates = values
        merged = self._heap + candidates.tolist()
        if len(merged) > self._k:
            merged = heapq.nlargest(self._k, merged)
        heapq.heapify(merged)
        self._heap = merged

    def threshold(self) -> float:
        """Smallest retained value; raises ``IndexError`` when empty."""
        if not self._heap:
            raise IndexError("threshold() on empty keeper")
        return self._heap[0]

    def values_descending(self) -> List[float]:
        """Retained values, largest first."""
        return sorted(self._heap, reverse=True)

    def merge(self, other: "TopKKeeper") -> None:
        """Fold another keeper's retained values into this one."""
        for value in other:
            self.offer(value)

    def clear(self) -> None:
        """Drop all retained values (capacity unchanged)."""
        self._heap = []

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """Versioned, JSON-safe snapshot (capacity + heap layout).

        The heap list is stored verbatim so the restored keeper's
        tie-breaking behaviour is bit-identical, not just set-equal.
        """
        state = serde.header("topk", TOPK_STATE_VERSION)
        state["k"] = int(self._k)
        state["heap"] = serde.float_list(self._heap)
        return state

    @classmethod
    def from_state(cls, state: dict) -> "TopKKeeper":
        """Rebuild a keeper from :meth:`to_state` output."""
        serde.check_state(state, "topk", TOPK_STATE_VERSION, "top-k keeper")
        serde.require_fields(state, ("k", "heap"), "top-k keeper")
        keeper = cls(int(state["k"]))
        keeper._heap = serde.float_list(state["heap"])
        return keeper
