"""Table 5: non-i.i.d. robustness on AR(1) data.

AR(1) streams with psi in {0, 0.2, 0.8} and marginal N(1e6, 5e4); 16K
period, 128K window; quantiles 0.5 / 0.9 / 0.99.  Shape: errors tiny
(1e-5..1e-3 as fractions) and growing mildly with psi.  The error-bound
coverage claim (empirical probability ~1) is checked alongside.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core import error_bound_from_data
from repro.evalkit.experiments.common import (
    PAPER_PERIOD,
    PAPER_WINDOW,
    ExperimentResult,
    describe_scale,
    scaled_window,
    stream_length,
)
from repro.evalkit.metrics import exact_quantile
from repro.evalkit.reporting import Table
from repro.evalkit.runner import run_accuracy
from repro.workloads import generate_ar1

PSIS = (0.0, 0.2, 0.8)
PHIS = (0.5, 0.9, 0.99)


def run(
    scale: float = 1.0,
    seed: int = 0,
    evaluations: int = 16,
    psis: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """Regenerate Table 5 plus the bound-coverage column."""
    window = scaled_window(PAPER_WINDOW, PAPER_PERIOD, scale)
    psi_list = list(psis if psis is not None else PSIS)
    table = Table(
        f"Table 5: average relative errors on AR(1) data "
        f"(window={window.size}, period={window.period})",
        ["psi"] + [f"Q{phi}" for phi in PHIS] + ["bound coverage"],
    )
    data: Dict[float, Dict[str, object]] = {}
    for psi in psi_list:
        values = generate_ar1(
            stream_length(window, evaluations), psi=psi, seed=seed
        )
        report = run_accuracy("qlove", values, window, PHIS)
        # Coverage of Theorem 1's bound: fraction of evaluations where the
        # aggregation error stays within the estimated bound.
        covered = 0
        total = 0
        arr = np.asarray(values)
        for start in range(0, len(arr) - window.size + 1, window.period):
            window_values = arr[start : start + window.size]
            for phi in PHIS:
                eb = error_bound_from_data(
                    window_values, phi, window.subwindow_count, window.period
                )
                truth = exact_quantile(window_values, phi)
                # The bound concerns the Level-2 aggregate; re-derive it.
                chunks = window_values.reshape(window.subwindow_count, window.period)
                level2 = float(
                    np.mean([exact_quantile(chunk, phi) for chunk in chunks])
                )
                covered += int(abs(level2 - truth) <= eb)
                total += 1
        errors = {phi: report.errors.mean_value_error(phi) for phi in PHIS}
        coverage = covered / total if total else float("nan")
        data[psi] = {"errors": errors, "coverage": coverage}
        table.add_row(
            f"{psi}",
            *(f"{errors[phi]:.2e}" for phi in PHIS),
            f"{coverage:.2f}",
        )

    return ExperimentResult(
        name="table5", tables=[table], data=data, notes=describe_scale(scale)
    )
