"""Historical quantile store: durable segments + time-range queries.

The layer that answers "p99 of latency between periods 840 and 900"
after the fact: per-period sketch states persist as CRC-framed segments
(:mod:`~repro.store.segment`) in append-only per-metric logs
(:mod:`~repro.store.store`), written at period boundaries by a
:class:`~repro.store.writer.HistoryWriter` and merged back at read time
by the range-query engine (:mod:`~repro.store.query`) — bit-identically
to a sequential run for time-composable policies.  See
``docs/history.md`` for the format and semantics.

Labeled metrics persist one log per *series* (keyed by the canonical
``metric{k=v,...}`` encoding), and :func:`~repro.series.groupby.
group_by_store` — re-exported here — answers historical group-by
queries over them.
"""

from repro.series.groupby import group_by_store, render_group_result
from repro.store.query import (
    merge_segments,
    query_at,
    query_range,
    query_series,
    rebuild_policy,
    render_result,
)
from repro.store.segment import (
    SEGMENT_KINDS,
    SEGMENT_VERSION,
    Segment,
    TornRecord,
    decode_line,
    encode_line,
)
from repro.store.store import (
    STORE_FORMAT,
    STORE_VERSION,
    RetentionPolicy,
    SegmentStore,
    StoreError,
)
from repro.store.writer import HistoryWriter

__all__ = [
    "SEGMENT_KINDS",
    "SEGMENT_VERSION",
    "STORE_FORMAT",
    "STORE_VERSION",
    "HistoryWriter",
    "RetentionPolicy",
    "Segment",
    "SegmentStore",
    "StoreError",
    "TornRecord",
    "decode_line",
    "encode_line",
    "group_by_store",
    "merge_segments",
    "query_at",
    "query_range",
    "query_series",
    "rebuild_policy",
    "render_group_result",
    "render_result",
]
